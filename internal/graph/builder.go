package graph

import (
	"fmt"
	"sort"
)

// Builder accumulates edges and produces an immutable Graph. It tolerates
// duplicate edges (weights are summed, mirroring multigraph collapse) and
// self-loops, and applies a DanglingPolicy at Build time.
//
// A Builder must not be used concurrently.
type Builder struct {
	n       int
	srcs    []NodeID
	dsts    []NodeID
	weights []float64 // nil until the first weighted edge is added
}

// NewBuilder creates a Builder for a graph with n nodes (identifiers
// 0..n-1). Additional nodes can be introduced implicitly by AddEdge with a
// larger endpoint, or explicitly with EnsureNode.
func NewBuilder(n int) *Builder {
	if n < 0 {
		n = 0
	}
	return &Builder{n: n}
}

// EnsureNode grows the node count so that id is a valid node.
func (b *Builder) EnsureNode(id NodeID) {
	if int(id) >= b.n {
		b.n = int(id) + 1
	}
}

// AddEdge records the directed edge u→v with weight 1.
func (b *Builder) AddEdge(u, v NodeID) {
	b.AddWeightedEdge(u, v, 1)
}

// AddWeightedEdge records the directed edge u→v with the given weight.
// Non-positive weights are invalid and reported at Build time.
func (b *Builder) AddWeightedEdge(u, v NodeID, w float64) {
	b.EnsureNode(u)
	b.EnsureNode(v)
	if b.weights == nil && w != 1 {
		// Promote to weighted storage lazily; backfill 1s.
		b.weights = make([]float64, len(b.srcs), cap(b.srcs))
		for i := range b.weights {
			b.weights[i] = 1
		}
	}
	b.srcs = append(b.srcs, u)
	b.dsts = append(b.dsts, v)
	if b.weights != nil {
		b.weights = append(b.weights, w)
	}
}

// NumEdges returns the number of edges recorded so far (before duplicate
// collapsing).
func (b *Builder) NumEdges() int { return len(b.srcs) }

// NumNodes returns the current node count.
func (b *Builder) NumNodes() int { return b.n }

// Build produces the Graph. The remap return value is non-nil only under
// DanglingPrune: remap[old] is the new identifier of old, or -1 if the node
// was pruned.
func (b *Builder) Build(policy DanglingPolicy) (g *Graph, remap []NodeID, err error) {
	srcs, dsts, weights := b.srcs, b.dsts, b.weights
	n := b.n
	if weights != nil {
		for i, w := range weights {
			if w <= 0 {
				return nil, nil, fmt.Errorf("graph: edge %d→%d has non-positive weight %g", srcs[i], dsts[i], w)
			}
			if w < MinNormalWeight {
				// A subnormal weight can sum into a subnormal normalizer whose
				// reciprocal overflows to +Inf and NaN-poisons the transition
				// column; reject it at the door.
				return nil, nil, fmt.Errorf("graph: edge %d→%d has subnormal weight %g (minimum %g)", srcs[i], dsts[i], w, MinNormalWeight)
			}
		}
	}

	if policy == DanglingPrune {
		srcs, dsts, weights, n, remap = pruneDangling(srcs, dsts, weights, n)
	}

	outDeg := make([]int64, n)
	for _, u := range srcs {
		outDeg[u]++
	}

	switch policy {
	case DanglingSelfLoop:
		for u := 0; u < n; u++ {
			if outDeg[u] == 0 {
				srcs = append(srcs, NodeID(u))
				dsts = append(dsts, NodeID(u))
				if weights != nil {
					weights = append(weights, 1)
				}
				outDeg[u]++
			}
		}
	case DanglingSharedSink:
		var dangling []NodeID
		for u := 0; u < n; u++ {
			if outDeg[u] == 0 {
				dangling = append(dangling, NodeID(u))
			}
		}
		if len(dangling) > 0 {
			sink := NodeID(n)
			n++
			outDeg = append(outDeg, 0)
			for _, u := range dangling {
				srcs = append(srcs, u)
				dsts = append(dsts, sink)
				if weights != nil {
					weights = append(weights, 1)
				}
				outDeg[u]++
			}
			srcs = append(srcs, sink)
			dsts = append(dsts, sink)
			if weights != nil {
				weights = append(weights, 1)
			}
			outDeg[sink]++
		}
	case DanglingReject:
		for u := 0; u < n; u++ {
			if outDeg[u] == 0 {
				return nil, nil, fmt.Errorf("graph: node %d has no outgoing edges", u)
			}
		}
	case DanglingPrune:
		// Already handled above; pruneDangling guarantees no dangling nodes.
	default:
		return nil, nil, fmt.Errorf("graph: unknown dangling policy %v", policy)
	}

	if n == 0 {
		return &Graph{
			n:        0,
			outIndex: []int64{0},
			inIndex:  []int64{0},
		}, remap, nil
	}

	g = assemble(srcs, dsts, weights, n)
	return g, remap, nil
}

// pruneDangling iteratively removes nodes with no outgoing edges and remaps
// identifiers densely. Removing a node deletes its incoming edges, which may
// strip another node of all out-edges, so the removal repeats to a fixed
// point.
func pruneDangling(srcs, dsts []NodeID, weights []float64, n int) ([]NodeID, []NodeID, []float64, int, []NodeID) {
	alive := make([]bool, n)
	for i := range alive {
		alive[i] = true
	}
	outDeg := make([]int, n)
	for changed := true; changed; {
		changed = false
		for i := range outDeg {
			outDeg[i] = 0
		}
		for i, u := range srcs {
			if alive[u] && alive[dsts[i]] {
				outDeg[u]++
			}
		}
		for u := 0; u < n; u++ {
			if alive[u] && outDeg[u] == 0 {
				alive[u] = false
				changed = true
			}
		}
	}

	remap := make([]NodeID, n)
	next := NodeID(0)
	for u := 0; u < n; u++ {
		if alive[u] {
			remap[u] = next
			next++
		} else {
			remap[u] = -1
		}
	}

	outSrcs := srcs[:0:0]
	outDsts := dsts[:0:0]
	var outWeights []float64
	for i := range srcs {
		u, v := srcs[i], dsts[i]
		if alive[u] && alive[v] {
			outSrcs = append(outSrcs, remap[u])
			outDsts = append(outDsts, remap[v])
			if weights != nil {
				outWeights = append(outWeights, weights[i])
			}
		}
	}
	return outSrcs, outDsts, outWeights, int(next), remap
}

// assemble builds the final CSR structures from an edge list, collapsing
// duplicate (u,v) pairs by summing their weights (unweighted duplicates
// collapse to a single weight-1 edge).
func assemble(srcs, dsts []NodeID, weights []float64, n int) *Graph {
	m := len(srcs)
	order := make([]int32, m)
	for i := range order {
		order[i] = int32(i)
	}
	sort.Slice(order, func(a, b int) bool {
		ia, ib := order[a], order[b]
		if srcs[ia] != srcs[ib] {
			return srcs[ia] < srcs[ib]
		}
		return dsts[ia] < dsts[ib]
	})

	outEdges := make([]NodeID, 0, m)
	var outWeights []float64
	if weights != nil {
		outWeights = make([]float64, 0, m)
	}
	edgeSrc := make([]NodeID, 0, m)
	lastU, lastV := NodeID(-1), NodeID(-1)
	for _, idx := range order {
		u, v := srcs[idx], dsts[idx]
		if u == lastU && v == lastV {
			if outWeights != nil {
				outWeights[len(outWeights)-1] += weights[idx]
			}
			continue
		}
		lastU, lastV = u, v
		edgeSrc = append(edgeSrc, u)
		outEdges = append(outEdges, v)
		if outWeights != nil {
			outWeights = append(outWeights, weights[idx])
		}
	}

	outIndex := make([]int64, n+1)
	for _, u := range edgeSrc {
		outIndex[u+1]++
	}
	for u := 0; u < n; u++ {
		outIndex[u+1] += outIndex[u]
	}

	g := &Graph{
		n:          n,
		outIndex:   outIndex,
		outEdges:   outEdges,
		outWeights: outWeights,
		weighted:   outWeights != nil,
	}
	g.totalOutWeight = make([]float64, n)
	g.invTotalOutWeight = make([]float64, n)
	for u := 0; u < n; u++ {
		if outWeights != nil {
			var s float64
			for e := outIndex[u]; e < outIndex[u+1]; e++ {
				s += outWeights[e]
			}
			g.totalOutWeight[u] = s
		} else {
			g.totalOutWeight[u] = float64(outIndex[u+1] - outIndex[u])
		}
		if w := g.totalOutWeight[u]; w > 0 {
			g.invTotalOutWeight[u] = 1 / w
		}
	}
	g.buildInAdjacency()
	return g
}

// buildInAdjacency derives the in-CSR mirror from the out-CSR.
func (g *Graph) buildInAdjacency() {
	m := len(g.outEdges)
	inDeg := make([]int64, g.n+1)
	for _, v := range g.outEdges {
		inDeg[v+1]++
	}
	for i := 0; i < g.n; i++ {
		inDeg[i+1] += inDeg[i]
	}
	g.inIndex = inDeg
	g.inEdges = make([]NodeID, m)
	if g.outWeights != nil {
		g.inWeights = make([]float64, m)
	}
	cursor := make([]int64, g.n)
	copy(cursor, g.inIndex[:g.n])
	for u := 0; u < g.n; u++ {
		for e := g.outIndex[u]; e < g.outIndex[u+1]; e++ {
			v := g.outEdges[e]
			slot := cursor[v]
			cursor[v]++
			g.inEdges[slot] = NodeID(u)
			if g.inWeights != nil {
				g.inWeights[slot] = g.outWeights[e]
			}
		}
	}
}

// FromEdges is a convenience constructor: it builds an unweighted graph with
// n nodes from an edge list using the given dangling policy.
func FromEdges(n int, edges [][2]NodeID, policy DanglingPolicy) (*Graph, error) {
	b := NewBuilder(n)
	for _, e := range edges {
		b.AddEdge(e[0], e[1])
	}
	g, _, err := b.Build(policy)
	return g, err
}
