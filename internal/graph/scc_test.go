package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSCCTwoComponents(t *testing.T) {
	// 0↔1 and 2↔3, with a bridge 1→2 (one direction only).
	g, err := FromEdges(4, [][2]NodeID{{0, 1}, {1, 0}, {1, 2}, {2, 3}, {3, 2}}, DanglingSelfLoop)
	if err != nil {
		t.Fatal(err)
	}
	comp, count := SCC(g)
	if count != 2 {
		t.Fatalf("count = %d, want 2", count)
	}
	if comp[0] != comp[1] || comp[2] != comp[3] || comp[0] == comp[2] {
		t.Errorf("components wrong: %v", comp)
	}
	// Reverse topological order of the condensation: the sink component
	// {2,3} is emitted first.
	if comp[2] != 0 || comp[0] != 1 {
		t.Errorf("condensation order wrong: %v", comp)
	}
}

func TestSCCSingletons(t *testing.T) {
	// A directed path has only singleton components (plus the self-loop
	// sink node added for the dangling end, which is its own component).
	g, err := FromEdges(4, [][2]NodeID{{0, 1}, {1, 2}, {2, 3}}, DanglingSelfLoop)
	if err != nil {
		t.Fatal(err)
	}
	_, count := SCC(g)
	if count != 4 {
		t.Errorf("count = %d, want 4", count)
	}
}

func TestSCCCycle(t *testing.T) {
	b := NewBuilder(5)
	for i := 0; i < 5; i++ {
		b.AddEdge(NodeID(i), NodeID((i+1)%5))
	}
	g, _, err := b.Build(DanglingReject)
	if err != nil {
		t.Fatal(err)
	}
	comp, count := SCC(g)
	if count != 1 {
		t.Fatalf("count = %d, want 1", count)
	}
	for _, c := range comp {
		if c != 0 {
			t.Errorf("components wrong: %v", comp)
		}
	}
	if LargestSCCSize(g) != 5 {
		t.Errorf("LargestSCCSize = %d", LargestSCCSize(g))
	}
}

func TestSCCDeepGraphNoOverflow(t *testing.T) {
	// A 200k-node path would overflow a recursive Tarjan; the iterative
	// version must handle it.
	n := 200000
	b := NewBuilder(n)
	for i := 0; i < n-1; i++ {
		b.AddEdge(NodeID(i), NodeID(i+1))
	}
	b.AddEdge(NodeID(n-1), 0) // close the cycle: one giant SCC
	g, _, err := b.Build(DanglingReject)
	if err != nil {
		t.Fatal(err)
	}
	if got := LargestSCCSize(g); got != n {
		t.Fatalf("LargestSCCSize = %d, want %d", got, n)
	}
}

func TestSCCAgreesWithMutualReachability(t *testing.T) {
	// Property: comp[u] == comp[v] ⇔ u reaches v and v reaches u.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(25)
		b := NewBuilder(n)
		m := rng.Intn(4 * n)
		for i := 0; i < m; i++ {
			b.AddEdge(NodeID(rng.Intn(n)), NodeID(rng.Intn(n)))
		}
		g, _, err := b.Build(DanglingSelfLoop)
		if err != nil {
			return false
		}
		comp, _ := SCC(g)
		reach := make([][]bool, g.N())
		for u := NodeID(0); int(u) < g.N(); u++ {
			reach[u] = bfsReach(g, u)
		}
		for u := 0; u < g.N(); u++ {
			for v := 0; v < g.N(); v++ {
				mutual := reach[u][v] && reach[v][u]
				if mutual != (comp[u] == comp[v]) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func bfsReach(g *Graph, u NodeID) []bool {
	seen := make([]bool, g.N())
	seen[u] = true
	queue := []NodeID{u}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, w := range g.OutNeighbors(v) {
			if !seen[w] {
				seen[w] = true
				queue = append(queue, w)
			}
		}
	}
	return seen
}

func TestReachableCount(t *testing.T) {
	g, err := FromEdges(5, [][2]NodeID{{0, 1}, {1, 2}, {3, 4}, {4, 3}, {2, 2}}, DanglingSelfLoop)
	if err != nil {
		t.Fatal(err)
	}
	if got := ReachableCount(g, 0, 0); got != 3 {
		t.Errorf("ReachableCount(0) = %d, want 3", got)
	}
	if got := ReachableCount(g, 3, 0); got != 2 {
		t.Errorf("ReachableCount(3) = %d, want 2", got)
	}
	// Early stop at the limit.
	if got := ReachableCount(g, 0, 2); got != 2 {
		t.Errorf("ReachableCount(0, limit 2) = %d, want 2", got)
	}
}

func TestDegenerateNodes(t *testing.T) {
	// At k=2 a node needs 3 reachable nodes (itself included). Node 0
	// reaches {0,1,2} — fine. Node 1 reaches {1,2}, node 2 only itself
	// (self-loop), and the isolated 2-cycle {3,4} reaches 2 nodes each:
	// all four are degenerate.
	g, err := FromEdges(5, [][2]NodeID{{0, 1}, {1, 2}, {3, 4}, {4, 3}}, DanglingSelfLoop)
	if err != nil {
		t.Fatal(err)
	}
	got := DegenerateNodes(g, 2)
	want := map[NodeID]bool{1: true, 2: true, 3: true, 4: true}
	if len(got) != len(want) {
		t.Fatalf("DegenerateNodes = %v", got)
	}
	for _, u := range got {
		if !want[u] {
			t.Errorf("unexpected degenerate node %d", u)
		}
	}
}
