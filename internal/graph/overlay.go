package graph

import (
	"fmt"
	"sort"
)

// EdgeEdit describes one edge mutation applied to an evolving graph. Weight
// is used for insertions into weighted graphs (a zero Weight means 1);
// Remove deletes the edge if present. A remove-then-insert pair for the
// same edge within one batch expresses a weight change.
type EdgeEdit struct {
	From, To NodeID
	Weight   float64
	Remove   bool
}

// nodePatch is the materialized adjacency of one patched node. Whether the
// out or in side is authoritative is tracked by the Overlay's dirty
// bitmaps; the untracked side of a patch is ignored. Slices are immutable
// once the patch is installed — derived overlays replace them wholesale.
type nodePatch struct {
	out  []NodeID  // strictly sorted
	outW []float64 // nil ⇒ all weight 1
	wTot float64   // sum of out weights (== len(out) when outW is nil)
	// invWTot = 1/wTot, memoized when the out side is installed so the
	// matvec kernels never divide (or re-derive the normalizer) per call.
	invWTot float64
	in      []NodeID  // sorted
	inW     []float64 // nil ⇒ all weight 1
}

func (p *nodePatch) footprint() int { return len(p.out) + len(p.in) }

// Overlay is a mutable-by-derivation delta on top of an immutable base CSR
// Graph: per-node patched adjacency for the (few) nodes an edit batch
// touched, with every untouched node still sweeping the base CSR arrays.
// It implements View, so every RWR/BCA consumer runs on it unchanged.
//
// Overlays are persistent (copy-on-write): Apply returns a NEW overlay and
// never mutates its receiver, so a published overlay is immutable and safe
// for any number of concurrent readers — exactly the property the serving
// daemon's snapshot model needs. Applying a batch costs O(Σ degree of
// touched endpoints + existing patch count), independent of the graph
// size; once the accumulated delta grows past a threshold, Compact folds
// the overlay back into a fresh CSR in O(N+M), off the query path.
//
// Apply reproduces the semantics of a full rebuild via evolve.ApplyEdits
// with the self-loop dangling policy exactly (the differential fuzz suite
// in internal/evolve holds the two implementations equal), including node
// growth: an edit naming node id ≥ N() grows the overlay, and every new
// node without out-edges receives a self-loop.
type Overlay struct {
	base     *Graph
	n        int
	m        int
	weighted bool
	// outDirty/inDirty bit u set ⇔ patch[u]'s out/in side is authoritative.
	// The hot per-node check in the matvec kernels is one bit test; only
	// patched nodes ever pay the patch-map lookup.
	outDirty []uint64
	inDirty  []uint64
	patch    map[NodeID]*nodePatch
	// deltaEdges is the adjacency footprint of all patches (out + in
	// entries) — the compaction-pressure metric.
	deltaEdges int
	// generation counts Apply derivations since the base CSR was built.
	generation int
}

// NewOverlay wraps a base CSR graph in an empty overlay. Cost O(N/64) (the
// dirty bitmaps); no adjacency is copied.
func NewOverlay(base *Graph) *Overlay {
	words := (base.N() + 63) / 64
	return &Overlay{
		base:     base,
		n:        base.N(),
		m:        base.M(),
		weighted: base.Weighted(),
		outDirty: make([]uint64, words),
		inDirty:  make([]uint64, words),
		patch:    map[NodeID]*nodePatch{},
	}
}

// Base returns the underlying CSR graph (the state as of the last
// compaction).
func (o *Overlay) Base() *Graph { return o.base }

// PatchedNodes returns the number of nodes with a patched adjacency.
func (o *Overlay) PatchedNodes() int { return len(o.patch) }

// DeltaEdges returns the total adjacency entries held in patches — the
// overlay's footprint beyond the base CSR, used to decide when to compact.
func (o *Overlay) DeltaEdges() int { return o.deltaEdges }

// Generation returns how many Apply derivations separate this overlay from
// its base CSR.
func (o *Overlay) Generation() int { return o.generation }

// N returns the number of nodes.
func (o *Overlay) N() int { return o.n }

// M returns the number of directed edges.
func (o *Overlay) M() int { return o.m }

// Weighted reports whether any edge carries a weight ≠ 1.
func (o *Overlay) Weighted() bool { return o.weighted }

func (o *Overlay) outPatched(u NodeID) bool {
	return o.outDirty[uint(u)>>6]&(1<<(uint(u)&63)) != 0
}

func (o *Overlay) inPatched(u NodeID) bool {
	return o.inDirty[uint(u)>>6]&(1<<(uint(u)&63)) != 0
}

// OutNeighbors returns u's out-neighbors, strictly sorted. The slice
// aliases either the patch or the base CSR; do not modify.
func (o *Overlay) OutNeighbors(u NodeID) []NodeID {
	if o.outPatched(u) {
		return o.patch[u].out
	}
	return o.base.OutNeighbors(u)
}

// OutWeightsOf returns the weights aligned with OutNeighbors(u), or nil
// when all of u's out-edges weigh 1.
func (o *Overlay) OutWeightsOf(u NodeID) []float64 {
	if o.outPatched(u) {
		return o.patch[u].outW
	}
	return o.base.OutWeightsOf(u)
}

// InNeighbors returns u's in-neighbors, sorted ascending.
func (o *Overlay) InNeighbors(u NodeID) []NodeID {
	if o.inPatched(u) {
		return o.patch[u].in
	}
	return o.base.InNeighbors(u)
}

// InWeightsOf returns the weights aligned with InNeighbors(u), or nil when
// every in-edge of u weighs 1.
func (o *Overlay) InWeightsOf(u NodeID) []float64 {
	if o.inPatched(u) {
		return o.patch[u].inW
	}
	return o.base.InWeightsOf(u)
}

// OutDegree returns the number of out-edges of u.
func (o *Overlay) OutDegree(u NodeID) int { return len(o.OutNeighbors(u)) }

// InDegree returns the number of in-edges of u.
func (o *Overlay) InDegree(u NodeID) int { return len(o.InNeighbors(u)) }

// TotalOutWeight returns the transition-column normalizer of u.
func (o *Overlay) TotalOutWeight(u NodeID) float64 {
	if o.outPatched(u) {
		return o.patch[u].wTot
	}
	return o.base.TotalOutWeight(u)
}

// InvTotalOutWeight returns the reciprocal of TotalOutWeight(u), memoized
// in the patch at Apply time for patched nodes and precomputed in the base
// CSR otherwise. Bit-identical to 1/TotalOutWeight(u) and always finite:
// Apply rejects subnormal weights, so every normalizer is a normal number.
func (o *Overlay) InvTotalOutWeight(u NodeID) float64 {
	if o.outPatched(u) {
		return o.patch[u].invWTot
	}
	return o.base.InvTotalOutWeight(u)
}

// HasEdge reports whether u→v exists (binary search over u's sorted
// out-neighbors, patched or base).
func (o *Overlay) HasEdge(u, v NodeID) bool {
	return o.EdgeWeight(u, v) != 0
}

// EdgeWeight returns the weight of u→v, or 0 if absent.
func (o *Overlay) EdgeWeight(u, v NodeID) float64 {
	if !o.outPatched(u) {
		return o.base.EdgeWeight(u, v)
	}
	p := o.patch[u]
	i := sort.Search(len(p.out), func(i int) bool { return p.out[i] >= v })
	if i == len(p.out) || p.out[i] != v {
		return 0
	}
	if p.outW == nil {
		return 1
	}
	return p.outW[i]
}

// edgeAdd is one pending insertion during Apply.
type edgeAdd struct {
	v NodeID
	w float64
}

// Apply derives a new overlay with the edit batch applied, leaving the
// receiver untouched. Semantics mirror a full rebuild (evolve.ApplyEdits
// with DanglingSelfLoop): edits validate in order against the receiver
// state, a remove-then-insert of the same edge is a weight change, removing
// a missing edge or inserting a duplicate is an error, node identifiers
// above N() grow the graph, and any touched or new node left without
// out-edges receives a self-loop. On error the receiver is unchanged and
// the returned overlay is nil.
//
// Cost is O(Σ degree(touched endpoints) + PatchedNodes + N/64), never
// O(N+M): the batch only materializes adjacency for the nodes it touches.
func (o *Overlay) Apply(edits []EdgeEdit) (*Overlay, error) {
	// Phase 1 — validate and net out the batch against the receiver,
	// mirroring the rebuild's two-phase semantics: removals of edges
	// inserted earlier in the batch cancel, a later insert after a removal
	// re-adds with the new weight, duplicate inserts overwrite.
	type key struct{ u, v NodeID }
	removed := make(map[key]bool)
	added := make(map[key]float64)
	for _, e := range edits {
		if e.From < 0 || e.To < 0 {
			return nil, fmt.Errorf("graph: edit names negative node %d→%d", e.From, e.To)
		}
		k := key{e.From, e.To}
		if e.Remove {
			if _, ok := added[k]; ok {
				delete(added, k)
				continue
			}
			if int(e.From) >= o.n || o.EdgeWeight(e.From, e.To) == 0 || removed[k] {
				return nil, fmt.Errorf("graph: removing non-existent edge %d→%d", e.From, e.To)
			}
			removed[k] = true
			continue
		}
		w := e.Weight
		if w == 0 {
			w = 1
		}
		if w < 0 {
			return nil, fmt.Errorf("graph: negative weight on edge %d→%d", e.From, e.To)
		}
		if w < MinNormalWeight {
			// Same guard as graph.Builder: a subnormal weight can sum into a
			// subnormal normalizer whose reciprocal overflows to +Inf.
			return nil, fmt.Errorf("graph: subnormal weight %g on edge %d→%d (minimum %g)", w, e.From, e.To, MinNormalWeight)
		}
		exists := int(e.From) < o.n && int(e.To) < o.n && o.EdgeWeight(e.From, e.To) != 0
		if exists && !removed[k] {
			return nil, fmt.Errorf("graph: inserting duplicate edge %d→%d (remove it first to change its weight)", e.From, e.To)
		}
		added[k] = w
	}

	// Node growth is decided by the SURVIVING insertions only — an insert
	// cancelled by a later remove must not grow the graph, exactly as the
	// rebuild's builder never sees the cancelled pair. (Removals cannot
	// grow: they require the edge, and with it both endpoints, to exist.)
	maxNode := NodeID(o.n - 1)
	for k := range added {
		if k.u > maxNode {
			maxNode = k.u
		}
		if k.v > maxNode {
			maxNode = k.v
		}
	}

	// Phase 2 — derive the successor overlay and install patches.
	n2 := int(maxNode) + 1
	d := o.derive(n2)
	for _, w := range added {
		if w != 1 {
			d.weighted = true
		}
	}

	// Group net changes per source / per destination.
	srcDel := make(map[NodeID][]NodeID)
	srcAdd := make(map[NodeID][]edgeAdd)
	dstDel := make(map[NodeID][]NodeID)
	dstAdd := make(map[NodeID][]edgeAdd)
	for k := range removed {
		srcDel[k.u] = append(srcDel[k.u], k.v)
		dstDel[k.v] = append(dstDel[k.v], k.u)
	}
	for k, w := range added {
		srcAdd[k.u] = append(srcAdd[k.u], edgeAdd{v: k.v, w: w})
		dstAdd[k.v] = append(dstAdd[k.v], edgeAdd{v: k.u, w: w})
	}

	// Rewrite the out-adjacency of every touched source, then give every
	// touched or new node that ended up with no out-edges its policy
	// self-loop (exactly what the rebuild's builder does after all edits).
	touched := make(map[NodeID]bool, len(srcDel)+len(srcAdd))
	for u := range srcDel {
		touched[u] = true
	}
	for u := range srcAdd {
		touched[u] = true
	}
	fresh := make(map[NodeID]bool) // patches writable within this Apply
	for u := range touched {
		out, w := o.outAdjFor(u)
		out, w = editAdj(out, w, srcDel[u], srcAdd[u])
		if len(out) == 0 {
			out, w = []NodeID{u}, nil
			dstAdd[u] = append(dstAdd[u], edgeAdd{v: u, w: 1})
		}
		d.installOut(u, out, w, fresh)
	}
	for u := o.n; u < n2; u++ {
		id := NodeID(u)
		if !touched[id] {
			d.installOut(id, []NodeID{id}, nil, fresh)
			dstAdd[id] = append(dstAdd[id], edgeAdd{v: id, w: 1})
		}
		// New nodes with no in-edges still need an installed (empty) in
		// side so InNeighbors never indexes past the base CSR.
		if _, ok := dstAdd[id]; !ok {
			d.installIn(id, nil, nil, fresh)
		}
	}

	// Mirror the net changes into the in-adjacency of every destination.
	inTouched := make(map[NodeID]bool, len(dstDel)+len(dstAdd))
	for v := range dstDel {
		inTouched[v] = true
	}
	for v := range dstAdd {
		inTouched[v] = true
	}
	for v := range inTouched {
		in, w := o.inAdjFor(v)
		in, w = editAdj(in, w, dstDel[v], dstAdd[v])
		d.installIn(v, in, w, fresh)
	}
	return d, nil
}

// derive returns a shallow successor of o covering n2 ≥ o.n nodes: copied
// bitmaps and patch map (patch objects shared until replaced wholesale).
func (o *Overlay) derive(n2 int) *Overlay {
	words := (n2 + 63) / 64
	d := &Overlay{
		base:       o.base,
		n:          n2,
		m:          o.m,
		weighted:   o.weighted,
		outDirty:   make([]uint64, words),
		inDirty:    make([]uint64, words),
		patch:      make(map[NodeID]*nodePatch, len(o.patch)+8),
		deltaEdges: o.deltaEdges,
		generation: o.generation + 1,
	}
	copy(d.outDirty, o.outDirty)
	copy(d.inDirty, o.inDirty)
	for u, p := range o.patch {
		d.patch[u] = p
	}
	return d
}

// outAdjFor returns the receiver's current out-adjacency of u, treating
// nodes beyond the receiver as empty (they are being created by this
// batch). The slices alias live storage — callers must not modify them.
func (o *Overlay) outAdjFor(u NodeID) ([]NodeID, []float64) {
	if int(u) >= o.n {
		return nil, nil
	}
	return o.OutNeighbors(u), o.OutWeightsOf(u)
}

func (o *Overlay) inAdjFor(v NodeID) ([]NodeID, []float64) {
	if int(v) >= o.n {
		return nil, nil
	}
	return o.InNeighbors(v), o.InWeightsOf(v)
}

// writablePatch returns a patch for u that this Apply may mutate: a patch
// already created during the same Apply, or a copy of the inherited one
// (inherited patches are shared with the parent overlay and never written).
// The returned patch's footprint is NOT counted in deltaEdges; the caller
// counts it back after mutating.
func (d *Overlay) writablePatch(u NodeID, fresh map[NodeID]bool) *nodePatch {
	if p, ok := d.patch[u]; ok {
		d.deltaEdges -= p.footprint()
		if fresh[u] {
			return p
		}
		cp := *p
		d.patch[u] = &cp
		fresh[u] = true
		return &cp
	}
	p := &nodePatch{}
	d.patch[u] = p
	fresh[u] = true
	return p
}

func (d *Overlay) installOut(u NodeID, out []NodeID, outW []float64, fresh map[NodeID]bool) {
	p := d.writablePatch(u, fresh)
	d.m += len(out) - d.oldOutLen(u, p)
	p.out, p.outW = out, outW
	if outW == nil {
		p.wTot = float64(len(out))
	} else {
		var s float64
		for _, w := range outW {
			s += w
		}
		p.wTot = s
	}
	if p.wTot > 0 {
		p.invWTot = 1 / p.wTot
	} else {
		p.invWTot = 0
	}
	d.outDirty[uint(u)>>6] |= 1 << (uint(u) & 63)
	d.deltaEdges += p.footprint()
}

// oldOutLen reports the out-degree u had before this installOut, looking
// through the (possibly freshly copied) patch or the base CSR.
func (d *Overlay) oldOutLen(u NodeID, p *nodePatch) int {
	if d.outPatched(u) {
		return len(p.out)
	}
	if int(u) < d.base.N() {
		return d.base.OutDegree(u)
	}
	return 0
}

func (d *Overlay) installIn(v NodeID, in []NodeID, inW []float64, fresh map[NodeID]bool) {
	p := d.writablePatch(v, fresh)
	p.in, p.inW = in, inW
	d.inDirty[uint(v)>>6] |= 1 << (uint(v) & 63)
	d.deltaEdges += p.footprint()
}

// editAdj applies deletions and sorted insertions to one adjacency list,
// returning freshly allocated slices. ws may be nil (all-1 weights); the
// result's weight slice is nil unless the inputs or additions force
// explicit weights.
func editAdj(nbrs []NodeID, ws []float64, dels []NodeID, adds []edgeAdd) ([]NodeID, []float64) {
	needW := ws != nil
	for _, a := range adds {
		if a.w != 1 {
			needW = true
		}
	}
	sort.Slice(adds, func(i, j int) bool { return adds[i].v < adds[j].v })
	var delSet map[NodeID]bool
	if len(dels) > 0 {
		delSet = make(map[NodeID]bool, len(dels))
		for _, v := range dels {
			delSet[v] = true
		}
	}
	out := make([]NodeID, 0, len(nbrs)+len(adds)-len(dels))
	var outW []float64
	if needW {
		outW = make([]float64, 0, cap(out))
	}
	emit := func(v NodeID, w float64) {
		out = append(out, v)
		if needW {
			outW = append(outW, w)
		}
	}
	ai := 0
	for i, v := range nbrs {
		for ai < len(adds) && adds[ai].v < v {
			emit(adds[ai].v, adds[ai].w)
			ai++
		}
		if delSet[v] {
			continue
		}
		w := 1.0
		if ws != nil {
			w = ws[i]
		}
		emit(v, w)
	}
	for ; ai < len(adds); ai++ {
		emit(adds[ai].v, adds[ai].w)
	}
	return out, outW
}

// Compact folds the overlay back into a fresh immutable CSR graph — the
// background O(N+M) step that resets the delta. The compacted graph is
// semantically identical to the overlay (same adjacency, weights and
// normalizers, so identical query answers); wrap it in NewOverlay to
// continue accepting edits.
func (o *Overlay) Compact() (*Graph, error) {
	b := NewBuilder(o.n)
	for u := NodeID(0); int(u) < o.n; u++ {
		nbrs := o.OutNeighbors(u)
		ws := o.OutWeightsOf(u)
		for i, v := range nbrs {
			w := 1.0
			if ws != nil {
				w = ws[i]
			}
			b.AddWeightedEdge(u, v, w)
		}
	}
	g, _, err := b.Build(DanglingSelfLoop)
	return g, err
}
