package graph

import (
	"math/rand"
	"reflect"
	"testing"
)

func relabelTestGraph(t *testing.T, seed int64, n, m int) *Graph {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	b := NewBuilder(n)
	for i := 0; i < m; i++ {
		u := NodeID(rng.Intn(n))
		v := NodeID(rng.Intn(n))
		if u == v {
			continue
		}
		b.AddWeightedEdge(u, v, 1+rng.Float64())
	}
	g, _, err := b.Build(DanglingSelfLoop)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// TestPermutationsAreBijections: both cache-aware orderings produce valid
// permutations on every graph shape tried.
func TestPermutationsAreBijections(t *testing.T) {
	for seed := int64(0); seed < 4; seed++ {
		g := relabelTestGraph(t, seed, 50+int(seed)*17, 120)
		for name, perm := range map[string]Permutation{
			"degree": DegreeOrderPermutation(g),
			"rcm":    RCMPermutation(g),
		} {
			if err := perm.Validate(g.N()); err != nil {
				t.Errorf("seed %d %s: %v", seed, name, err)
			}
		}
	}
}

// TestApplyPermutationPreservesTopology: the relabeled twin has exactly the
// original's edges and weights under the relabeling map.
func TestApplyPermutationPreservesTopology(t *testing.T) {
	g := relabelTestGraph(t, 7, 40, 100)
	perm := DegreeOrderPermutation(g)
	pg, err := ApplyPermutation(g, perm)
	if err != nil {
		t.Fatal(err)
	}
	if pg.N() != g.N() {
		t.Fatalf("node count changed: %d → %d", g.N(), pg.N())
	}
	edgesOf := func(gr *Graph, u NodeID) map[NodeID]float64 {
		out := make(map[NodeID]float64)
		ws := gr.OutWeightsOf(u)
		for i, v := range gr.OutNeighbors(u) {
			w := 1.0
			if ws != nil {
				w = ws[i]
			}
			out[v] = w
		}
		return out
	}
	for u := NodeID(0); int(u) < g.N(); u++ {
		orig := edgesOf(g, u)
		mapped := make(map[NodeID]float64, len(orig))
		for v, w := range orig {
			mapped[perm[v]] = w
		}
		if got := edgesOf(pg, perm[u]); !reflect.DeepEqual(got, mapped) {
			t.Fatalf("node %d: edges %v, want %v", u, got, mapped)
		}
	}
}

// TestPermutationExtend: padding with identity labels keeps the bijection and
// leaves the stored prefix untouched; shrinking is rejected.
func TestPermutationExtend(t *testing.T) {
	p := Permutation{2, 0, 1}
	full, err := p.Extend(5)
	if err != nil {
		t.Fatal(err)
	}
	if want := (Permutation{2, 0, 1, 3, 4}); !reflect.DeepEqual(full, want) {
		t.Fatalf("Extend(5) = %v, want %v", full, want)
	}
	if err := full.Validate(5); err != nil {
		t.Fatal(err)
	}
	same, err := p.Extend(3)
	if err != nil || !reflect.DeepEqual(same, p) {
		t.Fatalf("Extend(len) = %v, %v", same, err)
	}
	if _, err := p.Extend(2); err == nil {
		t.Fatal("Extend accepted a target smaller than the permutation")
	}
}
