package graph

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// ReadEdgeList parses a SNAP-style edge list: one "src dst" or
// "src dst weight" record per line, fields separated by spaces or tabs,
// lines starting with '#' or '%' ignored. Node identifiers must be
// non-negative integers; they are used verbatim, so sparse identifier
// spaces produce isolated nodes (which the dangling policy then handles).
func ReadEdgeList(r io.Reader) (*Builder, error) {
	b := NewBuilder(0)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<22)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || line[0] == '#' || line[0] == '%' {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return nil, fmt.Errorf("graph: line %d: want at least 2 fields, got %q", lineNo, line)
		}
		u, err := strconv.ParseInt(fields[0], 10, 32)
		if err != nil || u < 0 {
			return nil, fmt.Errorf("graph: line %d: bad source node %q", lineNo, fields[0])
		}
		v, err := strconv.ParseInt(fields[1], 10, 32)
		if err != nil || v < 0 {
			return nil, fmt.Errorf("graph: line %d: bad destination node %q", lineNo, fields[1])
		}
		if len(fields) >= 3 {
			w, err := strconv.ParseFloat(fields[2], 64)
			if err != nil {
				return nil, fmt.Errorf("graph: line %d: bad weight %q", lineNo, fields[2])
			}
			b.AddWeightedEdge(NodeID(u), NodeID(v), w)
		} else {
			b.AddEdge(NodeID(u), NodeID(v))
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("graph: reading edge list: %w", err)
	}
	return b, nil
}

// WriteEdgeList emits the graph in the format accepted by ReadEdgeList,
// with a header comment carrying node and edge counts. Weights are written
// only for weighted graphs.
func WriteEdgeList(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "# nodes=%d edges=%d weighted=%t\n", g.N(), g.M(), g.Weighted()); err != nil {
		return err
	}
	for u := NodeID(0); int(u) < g.N(); u++ {
		nbrs := g.OutNeighbors(u)
		ws := g.OutWeightsOf(u)
		for i, v := range nbrs {
			var err error
			if ws != nil {
				_, err = fmt.Fprintf(bw, "%d\t%d\t%g\n", u, v, ws[i])
			} else {
				_, err = fmt.Fprintf(bw, "%d\t%d\n", u, v)
			}
			if err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}
