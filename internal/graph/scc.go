package graph

// Strongly connected components and reachability diagnostics. RWR papers
// (including this one's datasets) typically work on crawls with a large
// strongly connected core; nodes that can reach fewer than k other nodes
// have a zero k-th proximity and therefore appear in EVERY reverse top-k
// answer, which both distorts experiments and signals a malformed input.
// These helpers let callers detect and quantify that.

// SCC computes strongly connected components with Tarjan's algorithm
// (iterative, so deep graphs cannot overflow the goroutine stack). It
// returns comp, where comp[v] is the component id of v (ids are dense,
// in reverse topological order of the condensation), and the number of
// components.
func SCC(g *Graph) (comp []int32, count int) {
	n := g.N()
	comp = make([]int32, n)
	for i := range comp {
		comp[i] = -1
	}
	index := make([]int32, n)
	low := make([]int32, n)
	onStack := make([]bool, n)
	for i := range index {
		index[i] = -1
	}
	var stack []NodeID
	next := int32(0)

	// Explicit DFS frames: node + position within its out-neighbor list.
	type frame struct {
		v   NodeID
		pos int64
	}
	var frames []frame
	for root := NodeID(0); int(root) < n; root++ {
		if index[root] != -1 {
			continue
		}
		frames = append(frames[:0], frame{v: root})
		index[root] = next
		low[root] = next
		next++
		stack = append(stack, root)
		onStack[root] = true
		for len(frames) > 0 {
			f := &frames[len(frames)-1]
			v := f.v
			advanced := false
			nbrs := g.OutNeighbors(v)
			for f.pos < int64(len(nbrs)) {
				w := nbrs[f.pos]
				f.pos++
				if index[w] == -1 {
					index[w] = next
					low[w] = next
					next++
					stack = append(stack, w)
					onStack[w] = true
					frames = append(frames, frame{v: w})
					advanced = true
					break
				}
				if onStack[w] && index[w] < low[v] {
					low[v] = index[w]
				}
			}
			if advanced {
				continue
			}
			// v is finished: pop its frame, maybe emit a component.
			if low[v] == index[v] {
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					comp[w] = int32(count)
					if w == v {
						break
					}
				}
				count++
			}
			frames = frames[:len(frames)-1]
			if len(frames) > 0 {
				parent := frames[len(frames)-1].v
				if low[v] < low[parent] {
					low[parent] = low[v]
				}
			}
		}
	}
	return comp, count
}

// LargestSCCSize returns the node count of the largest strongly connected
// component.
func LargestSCCSize(g *Graph) int {
	comp, count := SCC(g)
	if count == 0 {
		return 0
	}
	sizes := make([]int, count)
	for _, c := range comp {
		sizes[c]++
	}
	max := 0
	for _, s := range sizes {
		if s > max {
			max = s
		}
	}
	return max
}

// ReachableCount returns the number of nodes reachable from u (including u
// itself) via a bounded BFS; it stops early and returns limit as soon as
// at least `limit` nodes are found (pass limit ≤ 0 for an exhaustive
// count). Cost O(min(reachable, limit) + edges touched).
func ReachableCount(g *Graph, u NodeID, limit int) int {
	if limit <= 0 {
		limit = g.N()
	}
	seen := make(map[NodeID]bool, limit)
	seen[u] = true
	queue := []NodeID{u}
	for len(queue) > 0 && len(seen) < limit {
		v := queue[0]
		queue = queue[1:]
		for _, w := range g.OutNeighbors(v) {
			if !seen[w] {
				seen[w] = true
				if len(seen) >= limit {
					return limit
				}
				queue = append(queue, w)
			}
		}
	}
	return len(seen)
}

// DegenerateNodes returns the nodes that reach fewer than k+1 nodes
// (themselves included): exactly the nodes whose k-th largest proximity is
// zero and that therefore belong to every reverse top-k answer. Experiment
// inputs should keep this list small or empty.
func DegenerateNodes(g *Graph, k int) []NodeID {
	var out []NodeID
	for u := NodeID(0); int(u) < g.N(); u++ {
		if ReachableCount(g, u, k+1) < k+1 {
			out = append(out, u)
		}
	}
	return out
}
