package graph

// View is the read-only operator surface every RWR/BCA consumer needs from a
// graph: exactly the accessors of the immutable CSR Graph, factored into an
// interface so the same algorithms run unchanged over a base CSR or over a
// CSR-plus-delta Overlay.
//
// All slice-returning methods alias internal storage and must not be
// modified by callers. Implementations must be safe for concurrent readers
// (both Graph and Overlay are immutable once published).
//
// The hot numeric kernels (package rwr) do not pay interface dispatch per
// node for the common cases: they type-switch to concrete *Graph and
// *Overlay loops and fall back to the generic code only for third-party
// implementations.
type View interface {
	// N returns the number of nodes.
	N() int
	// M returns the number of directed edges.
	M() int
	// Weighted reports whether the view carries explicit edge weights.
	Weighted() bool
	// OutDegree returns the number of out-edges of u.
	OutDegree(u NodeID) int
	// InDegree returns the number of in-edges of u.
	InDegree(u NodeID) int
	// OutNeighbors returns u's out-neighbors, strictly sorted ascending.
	OutNeighbors(u NodeID) []NodeID
	// InNeighbors returns u's in-neighbors, sorted ascending.
	InNeighbors(u NodeID) []NodeID
	// OutWeightsOf returns weights aligned with OutNeighbors(u), or nil
	// when every edge of u weighs 1.
	OutWeightsOf(u NodeID) []float64
	// InWeightsOf returns weights aligned with InNeighbors(u), or nil when
	// every in-edge of u weighs 1.
	InWeightsOf(u NodeID) []float64
	// TotalOutWeight returns the transition-matrix column normalizer of u:
	// the sum of u's out-edge weights (== out-degree when unweighted).
	TotalOutWeight(u NodeID) float64
	// HasEdge reports whether the directed edge u→v exists.
	HasEdge(u, v NodeID) bool
	// EdgeWeight returns the weight of u→v, or 0 if the edge is absent.
	EdgeWeight(u, v NodeID) float64
}

var (
	_ View = (*Graph)(nil)
	_ View = (*Overlay)(nil)
)
