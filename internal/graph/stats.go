package graph

import (
	"fmt"
	"math"
	"sort"
)

// Stats summarizes structural properties of a graph; used by the experiment
// harness to report workload characteristics next to measured numbers.
type Stats struct {
	Nodes        int
	Edges        int
	Weighted     bool
	AvgOutDegree float64
	MaxOutDegree int
	MaxInDegree  int
	SelfLoops    int
	// InDegreeGini is a concentration measure of the in-degree
	// distribution in [0,1]; web-like power-law graphs score high.
	InDegreeGini float64
}

// ComputeStats scans the graph once and returns its Stats.
func ComputeStats(g *Graph) Stats {
	s := Stats{
		Nodes:    g.N(),
		Edges:    g.M(),
		Weighted: g.Weighted(),
	}
	if g.N() == 0 {
		return s
	}
	s.AvgOutDegree = float64(g.M()) / float64(g.N())
	inDegs := make([]int, g.N())
	for u := NodeID(0); int(u) < g.N(); u++ {
		od := g.OutDegree(u)
		if od > s.MaxOutDegree {
			s.MaxOutDegree = od
		}
		id := g.InDegree(u)
		inDegs[u] = id
		if id > s.MaxInDegree {
			s.MaxInDegree = id
		}
		if g.HasEdge(u, u) {
			s.SelfLoops++
		}
	}
	s.InDegreeGini = gini(inDegs)
	return s
}

// gini computes the Gini coefficient of a non-negative integer sample.
func gini(xs []int) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := make([]int, len(xs))
	copy(sorted, xs)
	sort.Ints(sorted)
	var cum, total float64
	for _, x := range sorted {
		total += float64(x)
	}
	if total == 0 {
		return 0
	}
	var area float64
	for _, x := range sorted {
		cum += float64(x)
		area += cum
	}
	n := float64(len(sorted))
	// Gini = 1 - 2*B where B is the area under the Lorenz curve.
	return 1 - (2*area-total)/(n*total)
}

// String renders the stats on one line.
func (s Stats) String() string {
	return fmt.Sprintf("n=%d m=%d avg_out=%.2f max_out=%d max_in=%d self_loops=%d gini_in=%.3f weighted=%t",
		s.Nodes, s.Edges, s.AvgOutDegree, s.MaxOutDegree, s.MaxInDegree, s.SelfLoops, s.InDegreeGini, s.Weighted)
}

// TopByInDegree returns the b nodes with the largest in-degree, ties broken
// by smaller identifier. Used by the paper's hub selection (§4.1.1).
func TopByInDegree[G View](g G, b int) []NodeID {
	return topByDegree(g.N(), b, func(u NodeID) int { return g.InDegree(u) })
}

// TopByOutDegree returns the b nodes with the largest out-degree, ties
// broken by smaller identifier.
func TopByOutDegree[G View](g G, b int) []NodeID {
	return topByDegree(g.N(), b, func(u NodeID) int { return g.OutDegree(u) })
}

func topByDegree(n, b int, deg func(NodeID) int) []NodeID {
	if b <= 0 || n == 0 {
		return nil
	}
	if b > n {
		b = n
	}
	ids := make([]NodeID, n)
	for i := range ids {
		ids[i] = NodeID(i)
	}
	sort.Slice(ids, func(i, j int) bool {
		di, dj := deg(ids[i]), deg(ids[j])
		if di != dj {
			return di > dj
		}
		return ids[i] < ids[j]
	})
	out := make([]NodeID, b)
	copy(out, ids[:b])
	return out
}

// DegreeHistogram returns counts[d] = number of nodes whose degree (as
// selected by inDegree) equals d, up to the maximum degree present.
func DegreeHistogram(g *Graph, inDegree bool) []int {
	max := 0
	deg := func(u NodeID) int { return g.OutDegree(u) }
	if inDegree {
		deg = func(u NodeID) int { return g.InDegree(u) }
	}
	for u := NodeID(0); int(u) < g.N(); u++ {
		if d := deg(u); d > max {
			max = d
		}
	}
	counts := make([]int, max+1)
	for u := NodeID(0); int(u) < g.N(); u++ {
		counts[deg(u)]++
	}
	return counts
}

// PowerLawExponent fits the tail exponent of the in-degree distribution via
// the discrete maximum-likelihood estimator (Clauset-style with fixed
// dmin). It returns NaN for graphs too small to fit. The experiment harness
// uses it to confirm the synthetic web graphs reproduce the power-law shape
// that Theorem 1 presumes.
func PowerLawExponent(g *Graph, dmin int) float64 {
	if dmin < 1 {
		dmin = 1
	}
	var sum float64
	var count int
	for u := NodeID(0); int(u) < g.N(); u++ {
		d := g.InDegree(u)
		if d >= dmin {
			sum += math.Log(float64(d) / (float64(dmin) - 0.5))
			count++
		}
	}
	if count < 10 || sum == 0 {
		return math.NaN()
	}
	return 1 + float64(count)/sum
}
