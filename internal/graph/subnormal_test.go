package graph

import (
	"math"
	"strings"
	"testing"
)

// TestBuilderRejectsSubnormalWeights: a weight below MinNormalWeight would
// produce a normalizer whose reciprocal overflows to +Inf, so Build refuses
// it outright.
func TestBuilderRejectsSubnormalWeights(t *testing.T) {
	b := NewBuilder(2)
	b.AddWeightedEdge(0, 1, 5e-324) // smallest subnormal
	b.AddWeightedEdge(1, 0, 1)
	if _, _, err := b.Build(DanglingSelfLoop); err == nil || !strings.Contains(err.Error(), "subnormal") {
		t.Fatalf("Build accepted a subnormal weight: err=%v", err)
	}

	// The smallest *normal* weight is fine, and its inverse is finite.
	b2 := NewBuilder(2)
	b2.AddWeightedEdge(0, 1, MinNormalWeight)
	b2.AddWeightedEdge(1, 0, 1)
	g, _, err := b2.Build(DanglingSelfLoop)
	if err != nil {
		t.Fatal(err)
	}
	if inv := g.InvTotalOutWeight(0); math.IsInf(inv, 0) || math.IsNaN(inv) {
		t.Fatalf("inverse normalizer of minimum normal weight not finite: %g", inv)
	}
}

// TestOverlayApplyRejectsSubnormalWeights: the O(edits) delta path enforces
// the same guard as the full rebuild.
func TestOverlayApplyRejectsSubnormalWeights(t *testing.T) {
	g, err := FromEdges(2, [][2]NodeID{{0, 1}, {1, 0}}, DanglingSelfLoop)
	if err != nil {
		t.Fatal(err)
	}
	o := NewOverlay(g)
	if _, err := o.Apply([]EdgeEdit{{From: 0, To: 0, Weight: 1e-310}}); err == nil || !strings.Contains(err.Error(), "subnormal") {
		t.Fatalf("Overlay.Apply accepted a subnormal weight: err=%v", err)
	}
	// Receiver unchanged, normalizers still finite.
	if inv := o.InvTotalOutWeight(0); inv != 1 {
		t.Fatalf("receiver mutated: InvTotalOutWeight(0) = %g, want 1", inv)
	}
}

// TestOverlayInvTotalOutWeightMemoized: patched nodes answer from the
// normalizer memoized at Apply time, bit-identical to 1/TotalOutWeight, and
// unpatched nodes fall through to the base CSR's precomputed slab.
func TestOverlayInvTotalOutWeightMemoized(t *testing.T) {
	b := NewBuilder(3)
	b.AddWeightedEdge(0, 1, 2)
	b.AddWeightedEdge(0, 2, 0.5)
	b.AddWeightedEdge(1, 2, 3)
	b.AddWeightedEdge(2, 0, 1)
	g, _, err := b.Build(DanglingSelfLoop)
	if err != nil {
		t.Fatal(err)
	}
	o := NewOverlay(g)
	o2, err := o.Apply([]EdgeEdit{{From: 0, To: 1, Remove: true}, {From: 0, To: 1, Weight: 7}})
	if err != nil {
		t.Fatal(err)
	}
	for u := NodeID(0); int(u) < o2.N(); u++ {
		want := 1 / o2.TotalOutWeight(u)
		if got := o2.InvTotalOutWeight(u); got != want {
			t.Fatalf("node %d: InvTotalOutWeight %g, want %g", u, got, want)
		}
	}
	if o2.TotalOutWeight(0) != 7.5 {
		t.Fatalf("patched normalizer %g, want 7.5", o2.TotalOutWeight(0))
	}
}
