// Package graph provides the directed-graph substrate used by every other
// module in this repository: a compact CSR (compressed sparse row)
// representation with both out- and in-adjacency, optional edge weights,
// configurable handling of dangling nodes, and edge-list I/O.
//
// The RWR transition matrix of the paper is never materialized; instead the
// Graph exposes exactly the quantities needed to apply it: for an edge j→i
// the transition probability is weight(j,i)/TotalOutWeight(j), which for
// unweighted graphs reduces to 1/OutDegree(j) (paper §2.1).
package graph

import (
	"errors"
	"fmt"
)

// NodeID identifies a node. Nodes are dense integers in [0, N).
// int32 keeps adjacency arrays compact: a 100M-edge graph costs 400MB
// per direction instead of 800MB.
type NodeID = int32

// MinNormalWeight is the smallest edge weight the graph layer accepts:
// the smallest positive normal float64 (0x1p-1022). Subnormal weights are
// rejected because a column whose weights sum into the subnormal range has
// an inverse normalizer that overflows to +Inf, which would turn the
// node's transition column into NaN and silently poison every downstream
// proximity score. Because IEEE addition of positive normals rounds to a
// value no smaller than either operand, per-edge enforcement guarantees
// every TotalOutWeight is a normal number and every inverse normalizer is
// finite.
const MinNormalWeight = 0x1p-1022

// DanglingPolicy selects how nodes without outgoing edges are handled when a
// Graph is built. The paper (footnote 1, §2.1) permits either deleting them
// or redirecting them to a sink; we implement both plus a self-loop variant,
// all of which preserve column stochasticity of the transition matrix.
type DanglingPolicy int

const (
	// DanglingSelfLoop gives each dangling node a self-loop. A random walk
	// reaching such a node stays there until it restarts. This is the
	// default because it keeps node identifiers stable.
	DanglingSelfLoop DanglingPolicy = iota
	// DanglingSharedSink appends one extra node that self-loops and makes
	// every dangling node point to it. The sink absorbs lost walks; node
	// count grows by one when at least one dangling node exists.
	DanglingSharedSink
	// DanglingPrune iteratively removes dangling nodes (removal can create
	// new dangling nodes, so the process repeats to a fixed point) and
	// compacts the identifier space. Use Build's returned mapping to
	// translate old identifiers.
	DanglingPrune
	// DanglingReject makes Build fail if any dangling node exists.
	DanglingReject
)

// String returns a human-readable policy name.
func (p DanglingPolicy) String() string {
	switch p {
	case DanglingSelfLoop:
		return "self-loop"
	case DanglingSharedSink:
		return "shared-sink"
	case DanglingPrune:
		return "prune"
	case DanglingReject:
		return "reject"
	default:
		return fmt.Sprintf("DanglingPolicy(%d)", int(p))
	}
}

// Graph is an immutable directed graph in CSR form. Both directions are
// stored so that the RWR operators A·x (needs in-edges or an edge push) and
// Aᵀ·x (needs out-edges) are each a single cache-friendly sweep.
//
// The zero value is an empty graph with no nodes; use a Builder to create
// non-trivial instances.
type Graph struct {
	n int

	// Out-adjacency: out-neighbors of u are outEdges[outIndex[u]:outIndex[u+1]].
	outIndex []int64
	outEdges []NodeID
	// outWeights[e] is the weight of the edge stored at outEdges[e].
	// nil for unweighted graphs (all weights 1).
	outWeights []float64
	// totalOutWeight[u] is the sum of weights of u's out-edges; for
	// unweighted graphs it equals the out-degree. It is the normalizer of
	// the column of the transition matrix belonging to u.
	totalOutWeight []float64
	// invTotalOutWeight[u] = 1/totalOutWeight[u], precomputed so the matvec
	// kernels multiply instead of dividing per row. Always finite: Build
	// rejects subnormal weights, so every normalizer is a normal number.
	invTotalOutWeight []float64

	// In-adjacency mirror, aligned the same way.
	inIndex   []int64
	inEdges   []NodeID
	inWeights []float64

	weighted bool
}

// N returns the number of nodes.
func (g *Graph) N() int { return g.n }

// M returns the number of directed edges (after dangling-policy edges were
// added, if any).
func (g *Graph) M() int { return len(g.outEdges) }

// Weighted reports whether the graph carries explicit edge weights.
func (g *Graph) Weighted() bool { return g.weighted }

// OutDegree returns the number of out-edges of u.
func (g *Graph) OutDegree(u NodeID) int {
	return int(g.outIndex[u+1] - g.outIndex[u])
}

// InDegree returns the number of in-edges of u.
func (g *Graph) InDegree(u NodeID) int {
	return int(g.inIndex[u+1] - g.inIndex[u])
}

// OutNeighbors returns the out-neighbors of u. The returned slice aliases
// internal storage and must not be modified.
func (g *Graph) OutNeighbors(u NodeID) []NodeID {
	return g.outEdges[g.outIndex[u]:g.outIndex[u+1]]
}

// InNeighbors returns the in-neighbors of u. The returned slice aliases
// internal storage and must not be modified.
func (g *Graph) InNeighbors(u NodeID) []NodeID {
	return g.inEdges[g.inIndex[u]:g.inIndex[u+1]]
}

// OutWeightsOf returns the weights aligned with OutNeighbors(u), or nil for
// unweighted graphs. The returned slice aliases internal storage.
func (g *Graph) OutWeightsOf(u NodeID) []float64 {
	if g.outWeights == nil {
		return nil
	}
	return g.outWeights[g.outIndex[u]:g.outIndex[u+1]]
}

// InWeightsOf returns the weights aligned with InNeighbors(u), or nil for
// unweighted graphs. The returned slice aliases internal storage.
func (g *Graph) InWeightsOf(u NodeID) []float64 {
	if g.inWeights == nil {
		return nil
	}
	return g.inWeights[g.inIndex[u]:g.inIndex[u+1]]
}

// TotalOutWeight returns the normalizer of node u's transition-matrix
// column: the sum of u's out-edge weights (== out-degree when unweighted).
func (g *Graph) TotalOutWeight(u NodeID) float64 {
	return g.totalOutWeight[u]
}

// InvTotalOutWeight returns the precomputed reciprocal of TotalOutWeight(u).
// The kernels multiply by it instead of dividing per row; the value is bit
// -identical to 1/TotalOutWeight(u) (IEEE-754 division is exactly rounded,
// hence deterministic) and always finite because Build rejects weights
// below MinNormalWeight.
func (g *Graph) InvTotalOutWeight(u NodeID) float64 {
	return g.invTotalOutWeight[u]
}

// HasEdge reports whether the directed edge u→v exists. It runs a binary
// search over u's (sorted) out-neighbor list.
func (g *Graph) HasEdge(u, v NodeID) bool {
	lo, hi := g.outIndex[u], g.outIndex[u+1]
	for lo < hi {
		mid := (lo + hi) / 2
		switch {
		case g.outEdges[mid] < v:
			lo = mid + 1
		case g.outEdges[mid] > v:
			hi = mid
		default:
			return true
		}
	}
	return false
}

// EdgeWeight returns the weight of edge u→v, or 0 if the edge does not
// exist. Unweighted edges have weight 1.
func (g *Graph) EdgeWeight(u, v NodeID) float64 {
	lo, hi := g.outIndex[u], g.outIndex[u+1]
	for lo < hi {
		mid := (lo + hi) / 2
		switch {
		case g.outEdges[mid] < v:
			lo = mid + 1
		case g.outEdges[mid] > v:
			hi = mid
		default:
			if g.outWeights == nil {
				return 1
			}
			return g.outWeights[mid]
		}
	}
	return 0
}

// Validate performs internal-consistency checks: CSR monotonicity, neighbor
// range, out/in mirror agreement on edge counts, positive weights, and
// absence of dangling nodes. It is O(n+m) and intended for tests and for
// verifying graphs loaded from external files.
func (g *Graph) Validate() error {
	if g.n < 0 {
		return errors.New("graph: negative node count")
	}
	if len(g.outIndex) != g.n+1 || len(g.inIndex) != g.n+1 {
		return errors.New("graph: CSR index length mismatch")
	}
	if g.outIndex[0] != 0 || g.inIndex[0] != 0 {
		return errors.New("graph: CSR index must start at 0")
	}
	if g.outIndex[g.n] != int64(len(g.outEdges)) || g.inIndex[g.n] != int64(len(g.inEdges)) {
		return errors.New("graph: CSR index must end at edge count")
	}
	if len(g.outEdges) != len(g.inEdges) {
		return fmt.Errorf("graph: out/in edge counts differ: %d vs %d", len(g.outEdges), len(g.inEdges))
	}
	var outSum float64
	for u := 0; u < g.n; u++ {
		if g.outIndex[u] > g.outIndex[u+1] || g.inIndex[u] > g.inIndex[u+1] {
			return fmt.Errorf("graph: non-monotone CSR index at node %d", u)
		}
		if g.outIndex[u+1] == g.outIndex[u] {
			return fmt.Errorf("graph: dangling node %d survived construction", u)
		}
		outSum = 0
		for e := g.outIndex[u]; e < g.outIndex[u+1]; e++ {
			v := g.outEdges[e]
			if v < 0 || int(v) >= g.n {
				return fmt.Errorf("graph: out-edge %d→%d out of range", u, v)
			}
			if e > g.outIndex[u] && g.outEdges[e-1] >= v {
				return fmt.Errorf("graph: out-neighbors of %d not strictly sorted", u)
			}
			w := 1.0
			if g.outWeights != nil {
				w = g.outWeights[e]
			}
			if w <= 0 {
				return fmt.Errorf("graph: non-positive weight on edge %d→%d", u, v)
			}
			if w < MinNormalWeight {
				return fmt.Errorf("graph: subnormal weight %g on edge %d→%d", w, u, v)
			}
			outSum += w
		}
		if diff := outSum - g.totalOutWeight[u]; diff > 1e-9 || diff < -1e-9 {
			return fmt.Errorf("graph: cached out-weight of %d is %g, recomputed %g", u, g.totalOutWeight[u], outSum)
		}
		if u < len(g.invTotalOutWeight) && g.invTotalOutWeight[u] != 1/g.totalOutWeight[u] {
			return fmt.Errorf("graph: cached inverse out-weight of %d is %g, recomputed %g", u, g.invTotalOutWeight[u], 1/g.totalOutWeight[u])
		}
		for e := g.inIndex[u]; e < g.inIndex[u+1]; e++ {
			v := g.inEdges[e]
			if v < 0 || int(v) >= g.n {
				return fmt.Errorf("graph: in-edge %d←%d out of range", u, v)
			}
		}
	}
	return nil
}
