package graph

import (
	"strings"
	"testing"
)

// FuzzReadEdgeList throws arbitrary text at the edge-list parser: it must
// either produce a builder whose graph passes Validate (under every
// dangling policy) or return an error — never panic.
func FuzzReadEdgeList(f *testing.F) {
	f.Add("0 1\n1 0\n")
	f.Add("# comment\n0\t1\t2.5\n1\t0\n")
	f.Add("")
	f.Add("a b c\n")
	f.Add("0 1 -3\n")
	f.Add("99999999999999999999 1\n")
	f.Add("0 1\n\n\n% note\n2 0 0.125\n")
	f.Fuzz(func(t *testing.T, input string) {
		b, err := ReadEdgeList(strings.NewReader(input))
		if err != nil {
			return
		}
		for _, policy := range []DanglingPolicy{DanglingSelfLoop, DanglingSharedSink, DanglingPrune} {
			// Rebuild from a fresh parse: Build may mutate builder slices.
			b2, err := ReadEdgeList(strings.NewReader(input))
			if err != nil {
				t.Fatalf("second parse disagreed: %v", err)
			}
			g, _, err := b2.Build(policy)
			if err != nil {
				continue // e.g. non-positive weights are rejected at build
			}
			if g.N() > 0 {
				if err := g.Validate(); err != nil {
					t.Fatalf("policy %v accepted invalid graph: %v", policy, err)
				}
			}
		}
		_ = b
	})
}
