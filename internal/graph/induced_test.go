package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestInducedBasic(t *testing.T) {
	b := NewBuilder(5)
	b.AddWeightedEdge(0, 1, 2)
	b.AddWeightedEdge(1, 2, 3)
	b.AddWeightedEdge(2, 0, 4)
	b.AddWeightedEdge(3, 0, 1)
	b.AddWeightedEdge(4, 3, 1)
	g, _, err := b.Build(DanglingSelfLoop)
	if err != nil {
		t.Fatal(err)
	}
	sub, mapping, err := Induced(g, []NodeID{0, 1, 2}, DanglingSelfLoop)
	if err != nil {
		t.Fatal(err)
	}
	if sub.N() != 3 || sub.M() != 3 {
		t.Fatalf("sub shape %d/%d", sub.N(), sub.M())
	}
	if mapping[3] != -1 || mapping[4] != -1 || mapping[0] != 0 {
		t.Errorf("mapping = %v", mapping)
	}
	if w := sub.EdgeWeight(0, 1); w != 2 {
		t.Errorf("weight lost: %g", w)
	}
	// Edge 3→0 is dropped because 3 was not kept.
	if sub.InDegree(0) != 1 {
		t.Errorf("in-degree of kept node 0 = %d, want 1", sub.InDegree(0))
	}
}

func TestInducedErrors(t *testing.T) {
	g, err := FromEdges(3, [][2]NodeID{{0, 1}, {1, 2}, {2, 0}}, DanglingSelfLoop)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := Induced(g, []NodeID{0, 9}, DanglingSelfLoop); err == nil {
		t.Error("want range error")
	}
	if _, _, err := Induced(g, []NodeID{0, 0}, DanglingSelfLoop); err == nil {
		t.Error("want duplicate error")
	}
}

func TestLargestSCCSubgraph(t *testing.T) {
	// A 4-cycle (the core) plus a 2-cycle and a pendant.
	g, err := FromEdges(7, [][2]NodeID{
		{0, 1}, {1, 2}, {2, 3}, {3, 0}, // big SCC
		{4, 5}, {5, 4}, // small SCC
		{6, 0}, // pendant into the core
	}, DanglingSelfLoop)
	if err != nil {
		t.Fatal(err)
	}
	sub, mapping, err := LargestSCCSubgraph(g, DanglingSelfLoop)
	if err != nil {
		t.Fatal(err)
	}
	if sub.N() != 4 {
		t.Fatalf("largest SCC size %d, want 4", sub.N())
	}
	for _, u := range []NodeID{0, 1, 2, 3} {
		if mapping[u] == -1 {
			t.Errorf("core node %d dropped", u)
		}
	}
	for _, u := range []NodeID{4, 5, 6} {
		if mapping[u] != -1 {
			t.Errorf("non-core node %d kept", u)
		}
	}
	if err := sub.Validate(); err != nil {
		t.Error(err)
	}
}

func TestInducedPreservesEdgesProperty(t *testing.T) {
	// Property: for kept u,v — sub has edge mapping[u]→mapping[v] iff g
	// has u→v, with the same weight.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(20)
		b := NewBuilder(n)
		for i := 0; i < 3*n; i++ {
			b.AddWeightedEdge(NodeID(rng.Intn(n)), NodeID(rng.Intn(n)), 1+rng.Float64())
		}
		g, _, err := b.Build(DanglingSelfLoop)
		if err != nil {
			return false
		}
		var keep []NodeID
		for u := NodeID(0); int(u) < n; u++ {
			if rng.Intn(2) == 0 {
				keep = append(keep, u)
			}
		}
		if len(keep) == 0 {
			return true
		}
		sub, mapping, err := Induced(g, keep, DanglingSelfLoop)
		if err != nil {
			return false
		}
		for _, u := range keep {
			for _, v := range keep {
				want := g.EdgeWeight(u, v)
				got := sub.EdgeWeight(mapping[u], mapping[v])
				// The dangling policy may add a self-loop the original
				// lacked; tolerate exactly that case.
				if u == v && want == 0 && got == 1 {
					continue
				}
				if want != got {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
