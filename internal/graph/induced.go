package graph

import "fmt"

// Induced extracts the subgraph induced by the given node set: the kept
// nodes are renumbered densely in the order given, and exactly the edges
// with both endpoints kept survive. The returned mapping translates old
// identifiers (mapping[old] = new id, or -1 if dropped). The dangling
// policy handles kept nodes whose surviving out-degree is zero.
//
// Typical use: restrict an experiment graph to its largest strongly
// connected component, the standard preprocessing step of RWR evaluations.
func Induced(g *Graph, keep []NodeID, policy DanglingPolicy) (*Graph, []NodeID, error) {
	mapping := make([]NodeID, g.N())
	for i := range mapping {
		mapping[i] = -1
	}
	for newID, old := range keep {
		if int(old) < 0 || int(old) >= g.N() {
			return nil, nil, fmt.Errorf("graph: induced node %d out of range [0,%d)", old, g.N())
		}
		if mapping[old] != -1 {
			return nil, nil, fmt.Errorf("graph: node %d listed twice", old)
		}
		mapping[old] = NodeID(newID)
	}
	b := NewBuilder(len(keep))
	for _, old := range keep {
		nbrs := g.OutNeighbors(old)
		ws := g.OutWeightsOf(old)
		for i, v := range nbrs {
			if mapping[v] == -1 {
				continue
			}
			if ws != nil {
				b.AddWeightedEdge(mapping[old], mapping[v], ws[i])
			} else {
				b.AddEdge(mapping[old], mapping[v])
			}
		}
	}
	sub, _, err := b.Build(policy)
	if err != nil {
		return nil, nil, err
	}
	return sub, mapping, nil
}

// LargestSCCSubgraph restricts g to its largest strongly connected
// component (smallest-id component wins ties) and returns the subgraph
// plus the old→new mapping.
func LargestSCCSubgraph(g *Graph, policy DanglingPolicy) (*Graph, []NodeID, error) {
	comp, count := SCC(g)
	if count == 0 {
		return nil, nil, fmt.Errorf("graph: empty graph has no components")
	}
	sizes := make([]int, count)
	for _, c := range comp {
		sizes[c]++
	}
	best := 0
	for c, s := range sizes {
		if s > sizes[best] {
			best = c
		}
	}
	var keep []NodeID
	for u := NodeID(0); int(u) < g.N(); u++ {
		if comp[u] == int32(best) {
			keep = append(keep, u)
		}
	}
	return Induced(g, keep, policy)
}
