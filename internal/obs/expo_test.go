package obs

import (
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// buildTestRegistry assembles a registry covering every metric kind plus
// the escaping edge cases the exposition format defines.
func buildTestRegistry() *Registry {
	r := NewRegistry()
	c := r.NewCounter("requests_total", "Total requests.")
	c.Add(42)
	v := r.NewCounterVec("errors_total", "Errors with \"quotes\", back\\slash and\nnewline.", "handler", "status")
	v.With("query", "500").Add(3)
	v.With("edits", "400").Inc()
	v.With("tricky\"label\\with\nstuff", "503").Inc()
	g := r.NewGauge("depth", "Queue depth.")
	g.Set(2.5)
	r.NewGaugeFunc("uptime_seconds", "Uptime.", func() float64 { return 12.25 })
	r.NewCounterFunc("evictions_total", "Evictions.", func() float64 { return 7 })
	r.NewCounterFuncs("drops_total", "Drops by cause.", "cause", map[string]func() float64{
		"epoch":    func() float64 { return 2 },
		"capacity": func() float64 { return 1 },
	})
	h := r.NewHistogram("latency_seconds", "Latency.", []float64{0.01, 0.1, 1})
	h.Observe(0.005)
	h.Observe(0.05)
	h.Observe(5)
	return r
}

func TestExpositionGolden(t *testing.T) {
	r := buildTestRegistry()
	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	want := `# HELP requests_total Total requests.
# TYPE requests_total counter
requests_total 42
# HELP errors_total Errors with "quotes", back\\slash and\nnewline.
# TYPE errors_total counter
errors_total{handler="edits",status="400"} 1
errors_total{handler="query",status="500"} 3
errors_total{handler="tricky\"label\\with\nstuff",status="503"} 1
# HELP depth Queue depth.
# TYPE depth gauge
depth 2.5
# HELP uptime_seconds Uptime.
# TYPE uptime_seconds gauge
uptime_seconds 12.25
# HELP evictions_total Evictions.
# TYPE evictions_total counter
evictions_total 7
# HELP drops_total Drops by cause.
# TYPE drops_total counter
drops_total{cause="capacity"} 1
drops_total{cause="epoch"} 2
# HELP latency_seconds Latency.
# TYPE latency_seconds histogram
latency_seconds_bucket{le="0.01"} 1
latency_seconds_bucket{le="0.1"} 2
latency_seconds_bucket{le="1"} 2
latency_seconds_bucket{le="+Inf"} 3
latency_seconds_sum 5.055
latency_seconds_count 3
`
	if got := b.String(); got != want {
		t.Fatalf("exposition mismatch:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

// TestExpositionParsesBack round-trips the full registry through the
// parser: every declared family must come back with its HELP text, TYPE
// and samples intact, label escaping included.
func TestExpositionParsesBack(t *testing.T) {
	r := buildTestRegistry()
	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	fams, err := ParseText(strings.NewReader(b.String()))
	if err != nil {
		t.Fatalf("parse back: %v", err)
	}
	if len(fams) != 7 {
		t.Fatalf("parsed %d families, want 7", len(fams))
	}
	if f := fams["errors_total"]; f == nil || f.Type != "counter" {
		t.Fatalf("errors_total family missing or mistyped: %+v", f)
	} else if f.Help != "Errors with \"quotes\", back\\slash and\nnewline." {
		t.Fatalf("HELP unescaping broken: %q", f.Help)
	}
	got, ok := SampleValue(fams, "errors_total", map[string]string{
		"handler": "tricky\"label\\with\nstuff", "status": "503",
	})
	if !ok || got != 1 {
		t.Fatalf("escaped-label sample = %v (found %v), want 1", got, ok)
	}
	if v, ok := SampleValue(fams, "latency_seconds_bucket", map[string]string{"le": "+Inf"}); !ok || v != 3 {
		t.Fatalf("+Inf bucket = %v (found %v), want 3", v, ok)
	}
	if v, ok := SampleValue(fams, "latency_seconds_count", nil); !ok || v != 3 {
		t.Fatalf("histogram count = %v (found %v), want 3", v, ok)
	}
	if v, ok := SampleValue(fams, "drops_total", map[string]string{"cause": "epoch"}); !ok || v != 2 {
		t.Fatalf("func-series sample = %v (found %v), want 2", v, ok)
	}
}

func TestParseRejectsUndeclaredSample(t *testing.T) {
	_, err := ParseText(strings.NewReader("mystery_metric 3\n"))
	if err == nil {
		t.Fatal("sample without HELP/TYPE accepted")
	}
}

func TestParseRejectsMalformedLabels(t *testing.T) {
	in := "# HELP x x\n# TYPE x counter\nx{a=\"unterminated} 1\n"
	if _, err := ParseText(strings.NewReader(in)); err == nil {
		t.Fatal("unterminated label value accepted")
	}
}

func TestHandlerServesExposition(t *testing.T) {
	r := buildTestRegistry()
	rec := httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); ct != ContentType {
		t.Fatalf("content type %q, want %q", ct, ContentType)
	}
	fams, err := ParseText(rec.Body)
	if err != nil {
		t.Fatalf("scrape does not parse: %v", err)
	}
	if v, ok := SampleValue(fams, "requests_total", nil); !ok || v != 42 {
		t.Fatalf("requests_total = %v (found %v), want 42", v, ok)
	}
}

func TestSlowLogRingBounds(t *testing.T) {
	sl := NewSlowLog(4, 0)
	for i := 0; i < 10; i++ {
		sl.Record(SlowEntry{Route: "q", Detail: string(rune('a' + i)), Duration: time.Duration(i+1) * time.Millisecond})
	}
	got := sl.Snapshot(0)
	if len(got) != 4 {
		t.Fatalf("ring holds %d entries, want 4", len(got))
	}
	// Newest first: j, i, h, g.
	for i, want := range []string{"j", "i", "h", "g"} {
		if got[i].Detail != want {
			t.Fatalf("entry %d = %q, want %q (ring overwrote wrong slot)", i, got[i].Detail, want)
		}
	}
	// Threshold filter keeps only ≥ 9ms: j (10ms) and i (9ms).
	if f := sl.Snapshot(9 * time.Millisecond); len(f) != 2 {
		t.Fatalf("filtered snapshot holds %d entries, want 2", len(f))
	}
}

func TestSlowLogThresholdAndDisable(t *testing.T) {
	sl := NewSlowLog(8, 5*time.Millisecond)
	sl.Record(SlowEntry{Duration: time.Millisecond})
	sl.Record(SlowEntry{Duration: 6 * time.Millisecond})
	if got := sl.Snapshot(0); len(got) != 1 {
		t.Fatalf("threshold kept %d entries, want 1", len(got))
	}
	off := NewSlowLog(0, 0)
	off.Record(SlowEntry{Duration: time.Hour})
	if got := off.Snapshot(0); got != nil {
		t.Fatalf("disabled slowlog recorded %d entries", len(got))
	}
	var nilLog *SlowLog
	nilLog.Record(SlowEntry{Duration: time.Hour}) // must not panic
}

func TestSlowLogHandler(t *testing.T) {
	sl := NewSlowLog(4, 0)
	sl.Record(SlowEntry{Route: "reverse-topk", RequestID: "deadbeefdeadbeef", Duration: 120 * time.Millisecond,
		PhasesMS: map[string]float64{"pmpn": 80}})
	sl.Record(SlowEntry{Route: "reverse-topk", RequestID: "0123456789abcdef", Duration: 3 * time.Millisecond})

	rec := httptest.NewRecorder()
	sl.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/slowlog?threshold=50ms", nil))
	body := rec.Body.String()
	if !strings.Contains(body, "deadbeefdeadbeef") || strings.Contains(body, "0123456789abcdef") {
		t.Fatalf("threshold filter wrong: %s", body)
	}
	if !strings.Contains(body, `"pmpn":80`) {
		t.Fatalf("phase breakdown missing: %s", body)
	}

	// Bare milliseconds accepted too.
	rec = httptest.NewRecorder()
	sl.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/slowlog?threshold=50", nil))
	if body := rec.Body.String(); !strings.Contains(body, "deadbeefdeadbeef") || strings.Contains(body, "0123456789abcdef") {
		t.Fatalf("numeric threshold filter wrong: %s", body)
	}

	rec = httptest.NewRecorder()
	sl.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/slowlog?threshold=bogus", nil))
	if rec.Code != 400 {
		t.Fatalf("bogus threshold returned %d, want 400", rec.Code)
	}
}
