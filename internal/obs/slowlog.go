package obs

import (
	"encoding/json"
	"net/http"
	"strconv"
	"sync"
	"time"
)

// SlowEntry is one captured slow request.
type SlowEntry struct {
	Time      time.Time `json:"time"`
	RequestID string    `json:"request_id,omitempty"`
	// Route is the handler that served the request (e.g. "reverse-topk").
	Route string `json:"route"`
	// Detail is a short human-readable request summary ("q=17 k=10 mode=exact").
	Detail     string  `json:"detail,omitempty"`
	DurationMS float64 `json:"duration_ms"`
	// PhasesMS breaks the duration into named phases (pmpn, decide,
	// fallback, mc) when the request actually computed.
	PhasesMS map[string]float64 `json:"phases_ms,omitempty"`
	// Duration is the wall clock the entry was recorded with; DurationMS
	// is its JSON projection.
	Duration time.Duration `json:"-"`
}

// SlowLog is a bounded ring buffer of slow requests: recording is O(1),
// memory is fixed at capacity entries, and the oldest entry is overwritten
// when the ring is full. Safe for concurrent use.
type SlowLog struct {
	capacity  int
	threshold time.Duration

	mu   sync.Mutex
	ring []SlowEntry // guarded by mu
	next int         // guarded by mu; ring index the next entry lands in
	size int         // guarded by mu; entries recorded, capped at capacity
}

// NewSlowLog creates a ring of at most capacity entries recording requests
// whose duration is at least threshold. capacity ≤ 0 disables recording
// entirely; threshold ≤ 0 records every offered request.
func NewSlowLog(capacity int, threshold time.Duration) *SlowLog {
	s := &SlowLog{capacity: capacity, threshold: threshold}
	if capacity > 0 {
		s.ring = make([]SlowEntry, capacity)
	}
	return s
}

// Threshold returns the configured recording threshold.
func (s *SlowLog) Threshold() time.Duration { return s.threshold }

// Record offers one request to the ring; it is kept when recording is
// enabled and the duration reaches the threshold.
func (s *SlowLog) Record(e SlowEntry) {
	if s == nil || s.capacity <= 0 || e.Duration < s.threshold {
		return
	}
	e.DurationMS = float64(e.Duration) / float64(time.Millisecond)
	s.mu.Lock()
	s.ring[s.next] = e
	s.next = (s.next + 1) % s.capacity
	if s.size < s.capacity {
		s.size++
	}
	s.mu.Unlock()
}

// Snapshot returns the recorded entries with duration ≥ min, newest first.
func (s *SlowLog) Snapshot(min time.Duration) []SlowEntry {
	if s == nil || s.capacity <= 0 {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]SlowEntry, 0, s.size)
	for i := 0; i < s.size; i++ {
		e := s.ring[(s.next-1-i+2*s.capacity)%s.capacity]
		if e.Duration >= min {
			out = append(out, e)
		}
	}
	return out
}

// slowLogResponse is the JSON body of the slowlog endpoint.
type slowLogResponse struct {
	ThresholdMS float64     `json:"record_threshold_ms"`
	Capacity    int         `json:"capacity"`
	Count       int         `json:"count"`
	Entries     []SlowEntry `json:"entries"`
}

// Handler serves the ring as JSON, newest first. The optional ?threshold=
// query parameter filters the returned entries to durations at or above
// it; it accepts a Go duration string ("250ms", "1.5s") or a bare number
// of milliseconds.
func (s *SlowLog) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		var min time.Duration
		if raw := r.URL.Query().Get("threshold"); raw != "" {
			d, err := time.ParseDuration(raw)
			if err != nil {
				ms, ferr := strconv.ParseFloat(raw, 64)
				if ferr != nil {
					w.Header().Set("Content-Type", "application/json")
					w.WriteHeader(http.StatusBadRequest)
					body, _ := json.Marshal(map[string]string{"error": "threshold must be a duration (\"250ms\") or milliseconds"})
					_, _ = w.Write(body)
					return
				}
				d = time.Duration(ms * float64(time.Millisecond))
			}
			min = d
		}
		entries := s.Snapshot(min)
		if entries == nil {
			entries = []SlowEntry{}
		}
		resp := slowLogResponse{
			ThresholdMS: float64(s.Threshold()) / float64(time.Millisecond),
			Capacity:    s.capacity,
			Count:       len(entries),
			Entries:     entries,
		}
		w.Header().Set("Content-Type", "application/json")
		body, _ := json.Marshal(resp)
		_, _ = w.Write(body)
	})
}
