package obs

import (
	"os"
	"strconv"
	"sync/atomic"
	"time"
)

// Request IDs correlate one query across the serving topology: the fan-out
// coordinator stamps (or propagates) the X-RTK-Request-ID header, every
// shard daemon echoes it, and each hop's structured log line carries it —
// so one grep over all the logs reconstructs a request's full scatter-
// gather history.
//
// IDs are 16 lowercase hex characters: a per-process nonce (derived from
// the start time and pid, so two daemons on one host diverge immediately)
// mixed with an atomic sequence number through the SplitMix64 finalizer.
// Collisions within a process are impossible (the finalizer is a
// bijection over the sequence); across processes they are 2⁻⁶⁴-unlikely
// per pair. No randomness source is consumed — ID generation stays off
// the seedflow analyzer's radar and costs one atomic add.

var reqSeq atomic.Uint64

var procNonce = mix64(uint64(time.Now().UnixNano()) ^ uint64(os.Getpid())<<48)

// mix64 is the SplitMix64 finalizer: a cheap bijective scrambler.
func mix64(z uint64) uint64 {
	z += 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// NewRequestID returns a fresh 16-hex-character request identifier.
func NewRequestID() string {
	id := mix64(procNonce ^ reqSeq.Add(1))
	s := strconv.FormatUint(id, 16)
	if n := len(s); n < 16 {
		s = "0000000000000000"[:16-n] + s
	}
	return s
}
