package obs

import (
	"bufio"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
)

// Prometheus text exposition format, version 0.0.4: for every family a
// # HELP line, a # TYPE line, then one sample line per series —
//
//	name{label="value",...} 1027
//
// Histograms expand into cumulative name_bucket{le="..."} samples plus
// name_sum and name_count. HELP text escapes backslash and newline; label
// values additionally escape the double quote.

// ContentType is the scrape response content type.
const ContentType = "text/plain; version=0.0.4; charset=utf-8"

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, "\n", `\n`)
	return strings.ReplaceAll(s, `"`, `\"`)
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// labelString renders {a="x",b="y"}; extra (used for the histogram le
// label) is appended last. Returns "" for an unlabeled series.
func labelString(names, values []string, extraName, extraValue string) string {
	if len(names) == 0 && extraName == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, `%s="%s"`, n, escapeLabel(values[i]))
	}
	if extraName != "" {
		if len(names) > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, `%s="%s"`, extraName, escapeLabel(extraValue))
	}
	b.WriteByte('}')
	return b.String()
}

// WriteText writes every registered family in exposition format. Families
// appear in registration order; series within a family are sorted by label
// values, so the output is deterministic for a given metric state.
func (r *Registry) WriteText(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, f := range r.families() {
		fmt.Fprintf(bw, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		fmt.Fprintf(bw, "# TYPE %s %s\n", f.name, f.kind.promType())
		for _, s := range f.snapshotSeries() {
			switch f.kind {
			case kindCounter:
				fmt.Fprintf(bw, "%s%s %d\n", f.name, labelString(f.labels, s.values, "", ""), s.c.Value())
			case kindGauge:
				fmt.Fprintf(bw, "%s%s %s\n", f.name, labelString(f.labels, s.values, "", ""), formatFloat(s.g.Value()))
			case kindCounterFunc, kindGaugeFunc:
				fmt.Fprintf(bw, "%s%s %s\n", f.name, labelString(f.labels, s.values, "", ""), formatFloat(s.fn()))
			case kindHistogram:
				cum, count, sum := s.h.Snapshot()
				for i, bound := range s.h.bounds {
					fmt.Fprintf(bw, "%s_bucket%s %d\n", f.name, labelString(f.labels, s.values, "le", formatFloat(bound)), cum[i])
				}
				fmt.Fprintf(bw, "%s_bucket%s %d\n", f.name, labelString(f.labels, s.values, "le", "+Inf"), cum[len(cum)-1])
				fmt.Fprintf(bw, "%s_sum%s %s\n", f.name, labelString(f.labels, s.values, "", ""), formatFloat(sum))
				fmt.Fprintf(bw, "%s_count%s %d\n", f.name, labelString(f.labels, s.values, "", ""), count)
			}
		}
	}
	return bw.Flush()
}

// Handler returns the /metrics scrape endpoint.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", ContentType)
		// The scrape body is assembled per request; a client that hangs up
		// mid-scrape costs nothing but the aborted write.
		_ = r.WriteText(w)
	})
}

// Sample is one parsed exposition line.
type Sample struct {
	// Name is the full sample name, including any _bucket/_sum/_count
	// suffix on histogram samples.
	Name   string
	Labels map[string]string
	Value  float64
}

// Family is one parsed metric family.
type Family struct {
	Name    string
	Help    string
	Type    string
	Samples []Sample
}

// ParseText parses Prometheus text exposition, validating that every
// sample belongs to a declared family (histogram samples may carry the
// _bucket/_sum/_count suffixes) and that HELP/TYPE precede samples. It is
// the verification half of WriteText: scrape tests and the CI smoke parse
// the scraped body back through it.
func ParseText(r io.Reader) (map[string]*Family, error) {
	fams := make(map[string]*Family)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if strings.TrimSpace(line) == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.SplitN(line, " ", 4)
			if len(fields) < 3 || (fields[1] != "HELP" && fields[1] != "TYPE") {
				continue // other comments are legal and ignored
			}
			name := fields[2]
			f := fams[name]
			if f == nil {
				f = &Family{Name: name}
				fams[name] = f
			}
			if fields[1] == "HELP" {
				rest := ""
				if len(fields) == 4 {
					rest = fields[3]
				}
				f.Help = unescapeHelp(rest)
			} else {
				if len(fields) < 4 {
					return nil, fmt.Errorf("obs: line %d: TYPE without a type", lineNo)
				}
				f.Type = fields[3]
			}
			continue
		}
		s, err := parseSample(line)
		if err != nil {
			return nil, fmt.Errorf("obs: line %d: %w", lineNo, err)
		}
		f := fams[s.Name]
		if f == nil {
			base := s.Name
			for _, suf := range []string{"_bucket", "_sum", "_count"} {
				if t := strings.TrimSuffix(s.Name, suf); t != s.Name && fams[t] != nil && fams[t].Type == "histogram" {
					base = t
					break
				}
			}
			f = fams[base]
			if f == nil {
				return nil, fmt.Errorf("obs: line %d: sample %q precedes its HELP/TYPE declaration", lineNo, s.Name)
			}
		}
		f.Samples = append(f.Samples, s)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	for _, f := range fams {
		if f.Type == "" {
			return nil, fmt.Errorf("obs: family %s has no TYPE line", f.Name)
		}
	}
	return fams, nil
}

func unescapeHelp(s string) string {
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		if s[i] == '\\' && i+1 < len(s) {
			switch s[i+1] {
			case '\\':
				b.WriteByte('\\')
				i++
				continue
			case 'n':
				b.WriteByte('\n')
				i++
				continue
			}
		}
		b.WriteByte(s[i])
	}
	return b.String()
}

func parseSample(line string) (Sample, error) {
	s := Sample{Labels: map[string]string{}}
	i := strings.IndexAny(line, "{ ")
	if i < 0 {
		return s, fmt.Errorf("malformed sample %q", line)
	}
	s.Name = line[:i]
	if !nameRE.MatchString(s.Name) {
		return s, fmt.Errorf("invalid sample name %q", s.Name)
	}
	rest := line[i:]
	if rest[0] == '{' {
		rest = rest[1:]
		for {
			rest = strings.TrimLeft(rest, " ,")
			if rest == "" {
				return s, fmt.Errorf("unterminated label set in %q", line)
			}
			if rest[0] == '}' {
				rest = rest[1:]
				break
			}
			eq := strings.IndexByte(rest, '=')
			if eq < 0 || len(rest) < eq+2 || rest[eq+1] != '"' {
				return s, fmt.Errorf("malformed label in %q", line)
			}
			name := rest[:eq]
			if !nameRE.MatchString(name) {
				return s, fmt.Errorf("invalid label name %q", name)
			}
			var val strings.Builder
			j := eq + 2
			for {
				if j >= len(rest) {
					return s, fmt.Errorf("unterminated label value in %q", line)
				}
				c := rest[j]
				if c == '\\' && j+1 < len(rest) {
					switch rest[j+1] {
					case '\\':
						val.WriteByte('\\')
					case '"':
						val.WriteByte('"')
					case 'n':
						val.WriteByte('\n')
					default:
						return s, fmt.Errorf("bad escape in label value in %q", line)
					}
					j += 2
					continue
				}
				if c == '"' {
					j++
					break
				}
				val.WriteByte(c)
				j++
			}
			s.Labels[name] = val.String()
			rest = rest[j:]
		}
	}
	rest = strings.TrimSpace(rest)
	fields := strings.Fields(rest)
	if len(fields) < 1 {
		return s, fmt.Errorf("sample %q has no value", line)
	}
	v, err := strconv.ParseFloat(fields[0], 64)
	if err != nil {
		return s, fmt.Errorf("sample %q value: %v", line, err)
	}
	s.Value = v
	return s, nil
}

// SampleValue finds the value of the sample with the given name whose
// labels include every given key=value pair (extra labels on the sample
// are allowed). The bool reports whether such a sample exists.
func SampleValue(fams map[string]*Family, name string, labels map[string]string) (float64, bool) {
	for _, f := range fams {
		for _, s := range f.Samples {
			if s.Name != name {
				continue
			}
			ok := true
			for k, v := range labels {
				if s.Labels[k] != v {
					ok = false
					break
				}
			}
			if ok {
				return s.Value, true
			}
		}
	}
	return 0, false
}
