package obs

import (
	"math"
	"sync"
	"testing"
)

func TestCounterAndVec(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("jobs_total", "jobs")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	v := r.NewCounterVec("queries_total", "queries", "mode")
	v.With("exact").Add(3)
	v.With("approx").Inc()
	if got := v.With("exact").Value(); got != 3 {
		t.Fatalf("exact = %d, want 3", got)
	}
	if got := v.Total(); got != 4 {
		t.Fatalf("total = %d, want 4", got)
	}
	// With returns the same counter for the same labels.
	if v.With("exact") != v.With("exact") {
		t.Fatal("With not stable for identical label values")
	}
}

func TestGauge(t *testing.T) {
	r := NewRegistry()
	g := r.NewGauge("depth", "queue depth")
	g.Set(3.5)
	if got := g.Value(); got != 3.5 {
		t.Fatalf("gauge = %g, want 3.5", got)
	}
	g.Set(-1)
	if got := g.Value(); got != -1 {
		t.Fatalf("gauge = %g, want -1", got)
	}
}

func TestHistogramBucketsAndQuantile(t *testing.T) {
	r := NewRegistry()
	h := r.NewHistogram("lat", "latency", []float64{1, 2, 4})
	for _, v := range []float64{0.5, 1, 1.5, 3, 100} {
		h.Observe(v)
	}
	cum, count, sum := h.Snapshot()
	if count != 5 {
		t.Fatalf("count = %d, want 5", count)
	}
	if math.Abs(sum-106) > 1e-12 {
		t.Fatalf("sum = %g, want 106", sum)
	}
	// le=1 holds {0.5, 1}; le=2 adds 1.5; le=4 adds 3; +Inf adds 100.
	want := []uint64{2, 3, 4, 5}
	for i, w := range want {
		if cum[i] != w {
			t.Fatalf("cumulative[%d] = %d, want %d (full: %v)", i, cum[i], w, cum)
		}
	}
	// Median rank 2.5 lands in the le=2 bucket (cumulative 2→3).
	if q := h.Quantile(0.5); q < 1 || q > 2 {
		t.Fatalf("p50 = %g, want within (1,2]", q)
	}
	// p99 lands in the +Inf bucket → highest finite bound.
	if q := h.Quantile(0.99); q != 4 {
		t.Fatalf("p99 = %g, want 4 (top finite bound)", q)
	}
}

func TestHistogramEmptyQuantile(t *testing.T) {
	r := NewRegistry()
	h := r.NewHistogram("empty", "no observations", nil)
	if q := h.Quantile(0.5); q != 0 {
		t.Fatalf("empty histogram p50 = %g, want 0", q)
	}
}

// TestHistogramConcurrency hammers one histogram from many goroutines; run
// under -race it checks the lock-free hot path, and the final snapshot
// must account for every observation exactly.
func TestHistogramConcurrency(t *testing.T) {
	r := NewRegistry()
	h := r.NewHistogram("conc", "concurrent", []float64{0.25, 0.5, 0.75})
	v := r.NewCounterVec("conc_total", "concurrent counters", "worker")
	const workers, per = 8, 5000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			lab := string(rune('a' + w))
			for i := 0; i < per; i++ {
				h.Observe(float64(i%100) / 100)
				v.With(lab).Inc()
			}
		}(w)
	}
	wg.Wait()
	_, count, sum := h.Snapshot()
	if count != workers*per {
		t.Fatalf("count = %d, want %d", count, workers*per)
	}
	// Each worker contributes sum_{i<per} (i mod 100)/100 = (per/100)*49.5.
	wantSum := float64(workers) * float64(per/100) * 49.5
	if math.Abs(sum-wantSum) > 1e-6*wantSum {
		t.Fatalf("sum = %g, want %g", sum, wantSum)
	}
	if got := v.Total(); got != workers*per {
		t.Fatalf("vec total = %d, want %d", got, workers*per)
	}
}

func TestDuplicateRegistrationPanics(t *testing.T) {
	r := NewRegistry()
	r.NewCounter("dup", "first")
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration did not panic")
		}
	}()
	r.NewGauge("dup", "second")
}

func TestInvalidNamePanics(t *testing.T) {
	r := NewRegistry()
	defer func() {
		if recover() == nil {
			t.Fatal("invalid metric name did not panic")
		}
	}()
	r.NewCounter("bad name", "spaces are not allowed")
}

func TestRequestIDsUniqueAndWellFormed(t *testing.T) {
	seen := make(map[string]bool)
	for i := 0; i < 10000; i++ {
		id := NewRequestID()
		if len(id) != 16 {
			t.Fatalf("id %q: want 16 hex chars", id)
		}
		for _, c := range id {
			if !(c >= '0' && c <= '9' || c >= 'a' && c <= 'f') {
				t.Fatalf("id %q: non-hex char %q", id, c)
			}
		}
		if seen[id] {
			t.Fatalf("duplicate id %q after %d draws", id, i)
		}
		seen[id] = true
	}
}
