// Package obs is the serving stack's observability core: a stdlib-only
// metrics registry (atomic counters, gauges, and fixed-bucket latency
// histograms with a lock-free hot path, optionally labeled into families),
// a hand-written Prometheus text-format exposition writer and parser, a
// bounded slow-query ring buffer, and request-ID generation for cross-
// process correlation.
//
// The package deliberately avoids prometheus/client_golang, mirroring the
// repository's no-external-dependencies stance: the text exposition format
// is small and stable, and the handful of metric kinds the serving stack
// needs fit in a few hundred lines whose hot paths are single atomic
// operations.
//
// Concurrency: every metric update (Counter.Add, Gauge.Set,
// Histogram.Observe) is lock-free — safe from any goroutine, never
// blocking a query. Registration (Registry.NewCounter etc.) takes the
// registry mutex and is meant for startup; looking up a labeled series
// (CounterVec.With) reads a sync.Map and only locks on first use of a new
// label combination.
package obs

import (
	"fmt"
	"math"
	"regexp"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing integer metric.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add increases the counter by n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a float64 metric that can go up and down.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value returns the stored value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// DefBuckets are the default latency buckets in seconds: 100µs to 10s,
// roughly logarithmic — wide enough for a cache hit and a cold 1M-node
// PMPN alike.
var DefBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005,
	0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// Histogram is a fixed-bucket histogram. Observe is lock-free: one atomic
// bucket increment, one atomic count increment, and a CAS loop folding the
// value into the running sum.
type Histogram struct {
	bounds []float64 // immutable after construction; ascending upper bounds, +Inf implicit
	counts []atomic.Uint64
	count  atomic.Uint64
	sum    atomic.Uint64 // float64 bits, updated by CAS
}

func newHistogram(bounds []float64) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if !(bounds[i] > bounds[i-1]) {
			panic(fmt.Sprintf("obs: histogram bounds not ascending: %v", bounds))
		}
	}
	b := make([]float64, len(bounds))
	copy(b, bounds)
	return &Histogram{bounds: b, counts: make([]atomic.Uint64, len(b)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v) // first bound ≥ v (le semantics)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		if h.sum.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// Snapshot returns the cumulative bucket counts (one per bound, +Inf
// last), the total count, and the sum. Concurrent observations may land
// between the loads; each bucket is individually exact and monotone.
func (h *Histogram) Snapshot() (cumulative []uint64, count uint64, sum float64) {
	cumulative = make([]uint64, len(h.counts))
	var run uint64
	for i := range h.counts {
		run += h.counts[i].Load()
		cumulative[i] = run
	}
	return cumulative, h.count.Load(), math.Float64frombits(h.sum.Load())
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Quantile estimates the q-th quantile (0 ≤ q ≤ 1) by linear
// interpolation within the containing bucket, the same estimate
// Prometheus's histogram_quantile computes. Returns 0 with no
// observations; values in the +Inf bucket report the highest finite bound.
func (h *Histogram) Quantile(q float64) float64 {
	cum, _, _ := h.Snapshot()
	total := cum[len(cum)-1]
	if total == 0 || math.IsNaN(q) {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	i := sort.Search(len(cum), func(i int) bool { return float64(cum[i]) >= rank })
	if i >= len(h.bounds) {
		// +Inf bucket: no finite upper edge to interpolate toward.
		if len(h.bounds) == 0 {
			return 0
		}
		return h.bounds[len(h.bounds)-1]
	}
	lo, hi := 0.0, h.bounds[i]
	var below uint64
	if i > 0 {
		lo = h.bounds[i-1]
		below = cum[i-1]
	}
	in := float64(cum[i] - below)
	if in == 0 {
		return hi
	}
	return lo + (hi-lo)*(rank-float64(below))/in
}

// metricKind discriminates family types in the exposition.
type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
	kindCounterFunc
	kindGaugeFunc
)

func (k metricKind) promType() string {
	switch k {
	case kindCounter, kindCounterFunc:
		return "counter"
	case kindHistogram:
		return "histogram"
	default:
		return "gauge"
	}
}

// series is one labeled instance within a family.
type series struct {
	values []string
	c      *Counter
	g      *Gauge
	h      *Histogram
	fn     func() float64
}

// family is one named metric with zero or more labeled series.
type family struct {
	name   string
	help   string
	kind   metricKind
	labels []string
	bounds []float64 // histogram families share bucket bounds

	byKey sync.Map // label key (values joined by \xff) → *series

	mu    sync.Mutex
	order []*series // guarded by mu; creation order, re-sorted at exposition
}

func (f *family) getOrCreate(values []string) *series {
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("obs: metric %s wants %d label values, got %d", f.name, len(f.labels), len(values)))
	}
	key := strings.Join(values, "\xff")
	if s, ok := f.byKey.Load(key); ok {
		return s.(*series)
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if s, ok := f.byKey.Load(key); ok {
		return s.(*series)
	}
	vals := make([]string, len(values))
	copy(vals, values)
	s := &series{values: vals}
	switch f.kind {
	case kindCounter:
		s.c = &Counter{}
	case kindGauge:
		s.g = &Gauge{}
	case kindHistogram:
		s.h = newHistogram(f.bounds)
	}
	f.order = append(f.order, s)
	f.byKey.Store(key, s)
	return s
}

// snapshotSeries returns the family's series sorted by label values, so
// exposition (and golden tests over it) is deterministic regardless of
// creation order.
func (f *family) snapshotSeries() []*series {
	f.mu.Lock()
	out := make([]*series, len(f.order))
	copy(out, f.order)
	f.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].values, out[j].values
		for k := range a {
			if a[k] != b[k] {
				return a[k] < b[k]
			}
		}
		return false
	})
	return out
}

// CounterVec is a counter family keyed by label values.
type CounterVec struct{ f *family }

// With returns the counter for the given label values, creating it on
// first use.
func (v *CounterVec) With(values ...string) *Counter { return v.f.getOrCreate(values).c }

// Total sums every series in the family.
func (v *CounterVec) Total() uint64 {
	var t uint64
	for _, s := range v.f.snapshotSeries() {
		t += s.c.Value()
	}
	return t
}

// GaugeVec is a gauge family keyed by label values.
type GaugeVec struct{ f *family }

// With returns the gauge for the given label values.
func (v *GaugeVec) With(values ...string) *Gauge { return v.f.getOrCreate(values).g }

// HistogramVec is a histogram family keyed by label values.
type HistogramVec struct{ f *family }

// With returns the histogram for the given label values.
func (v *HistogramVec) With(values ...string) *Histogram { return v.f.getOrCreate(values).h }

// Registry holds a set of metric families and writes them in Prometheus
// text exposition format. Metric names must be unique within a registry;
// duplicate or malformed registrations panic — they are programming
// errors, caught at startup, not runtime conditions.
type Registry struct {
	mu     sync.Mutex
	fams   []*family          // guarded by mu; registration order
	byName map[string]*family // guarded by mu
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*family)}
}

var nameRE = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)

func (r *Registry) register(name, help string, kind metricKind, labels, values []string, bounds []float64) *family {
	if !nameRE.MatchString(name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", name))
	}
	for _, l := range labels {
		if !nameRE.MatchString(l) || strings.HasPrefix(l, "__") {
			panic(fmt.Sprintf("obs: invalid label name %q on metric %s", l, name))
		}
	}
	f := &family{name: name, help: help, kind: kind, labels: append([]string(nil), labels...), bounds: bounds}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.byName[name]; dup {
		panic(fmt.Sprintf("obs: metric %q registered twice", name))
	}
	r.byName[name] = f
	r.fams = append(r.fams, f)
	if values != nil {
		f.getOrCreate(values)
	}
	return f
}

// NewCounter registers an unlabeled counter.
func (r *Registry) NewCounter(name, help string) *Counter {
	return r.register(name, help, kindCounter, nil, []string{}, nil).getOrCreate(nil).c
}

// NewCounterVec registers a counter family with the given label names.
// Series materialize on first With.
func (r *Registry) NewCounterVec(name, help string, labels ...string) *CounterVec {
	return &CounterVec{r.register(name, help, kindCounter, labels, nil, nil)}
}

// NewGauge registers an unlabeled gauge.
func (r *Registry) NewGauge(name, help string) *Gauge {
	return r.register(name, help, kindGauge, nil, []string{}, nil).getOrCreate(nil).g
}

// NewGaugeVec registers a gauge family with the given label names.
func (r *Registry) NewGaugeVec(name, help string, labels ...string) *GaugeVec {
	return &GaugeVec{r.register(name, help, kindGauge, labels, nil, nil)}
}

// NewGaugeFunc registers a gauge whose value is computed at scrape time.
// fn must be safe to call from any goroutine.
func (r *Registry) NewGaugeFunc(name, help string, fn func() float64) {
	f := r.register(name, help, kindGaugeFunc, nil, nil, nil)
	f.mu.Lock()
	f.order = append(f.order, &series{values: []string{}, fn: fn})
	f.mu.Unlock()
}

// NewCounterFunc registers a counter whose value is read at scrape time —
// the bridge for counters owned by subsystems that should not depend on
// this package. fn must be monotone and safe from any goroutine.
func (r *Registry) NewCounterFunc(name, help string, fn func() float64) {
	f := r.register(name, help, kindCounterFunc, nil, nil, nil)
	f.mu.Lock()
	f.order = append(f.order, &series{values: []string{}, fn: fn})
	f.mu.Unlock()
}

// NewCounterFuncs registers a one-label counter family whose series values
// are read at scrape time. The series set is fixed at registration.
func (r *Registry) NewCounterFuncs(name, help, label string, fns map[string]func() float64) {
	f := r.register(name, help, kindCounterFunc, []string{label}, nil, nil)
	keys := make([]string, 0, len(fns))
	for k := range fns {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	f.mu.Lock()
	for _, k := range keys {
		f.order = append(f.order, &series{values: []string{k}, fn: fns[k]})
	}
	f.mu.Unlock()
}

// NewHistogram registers an unlabeled histogram with the given bucket
// upper bounds (nil selects DefBuckets).
func (r *Registry) NewHistogram(name, help string, bounds []float64) *Histogram {
	if bounds == nil {
		bounds = DefBuckets
	}
	return r.register(name, help, kindHistogram, nil, []string{}, bounds).getOrCreate(nil).h
}

// NewHistogramVec registers a histogram family with the given label names
// and bucket upper bounds (nil selects DefBuckets).
func (r *Registry) NewHistogramVec(name, help string, bounds []float64, labels ...string) *HistogramVec {
	if bounds == nil {
		bounds = DefBuckets
	}
	return &HistogramVec{r.register(name, help, kindHistogram, labels, nil, bounds)}
}

// families returns the registered families in registration order.
func (r *Registry) families() []*family {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*family, len(r.fams))
	copy(out, r.fams)
	return out
}
