// Package simrank implements SimRank (Jeh & Widom, KDD 2002) and a reverse
// top-k query on top of it — the paper's second stated future-work
// direction (§7): "generalize the problem of reverse top-k search to other
// proximity measures such as SimRank".
//
// SimRank scores two nodes by the similarity of their in-neighborhoods:
//
//	s(u,u) = 1
//	s(u,v) = C/(|In(u)|·|In(v)|) · Σ_{a∈In(u)} Σ_{b∈In(v)} s(a,b)
//
// with decay C (typically 0.6–0.8). Unlike RWR, SimRank is symmetric, so a
// reverse top-k query needs no transposed solver — but it still needs the
// k-th largest similarity of every node, which this package supports with
// the same bound-based pruning idea as the RWR engine: the fixed-point
// iteration approaches s from below (s₀ = I and the map is monotone), so
// iterate t yields lower bounds, and C^(t+1) bounds the tail from above
// (Lizorkin et al., VLDB 2008).
//
// The pairwise matrix costs O(n²) memory and O(I·n²·d²) time, so this is a
// small-graph engine (the demonstration substrate for the future-work
// query, not a large-scale system; scalable SimRank is its own literature).
package simrank

import (
	"fmt"
	"sort"

	"repro/internal/graph"
	"repro/internal/vecmath"
)

// MaxNodes bounds the graphs the dense engine accepts (n² float64 each for
// two iterates; 8000² ≈ 512MB per matrix is already generous).
const MaxNodes = 8000

// Params configures the SimRank computation.
type Params struct {
	// C is the decay factor in (0,1) (Jeh & Widom use 0.8).
	C float64
	// Iterations is the fixed-point iteration count; the result is exact
	// up to an additive C^(Iterations+1) on every pair.
	Iterations int
}

// DefaultParams mirrors the original paper: C=0.8, 11 iterations (tail
// bound 0.8^12 ≈ 0.07) — sufficient for stable top-k membership on the
// graphs this engine targets.
func DefaultParams() Params { return Params{C: 0.8, Iterations: 11} }

// Validate reports whether the parameters are usable.
func (p Params) Validate() error {
	if p.C <= 0 || p.C >= 1 {
		return fmt.Errorf("simrank: C must be in (0,1), got %g", p.C)
	}
	if p.Iterations <= 0 {
		return fmt.Errorf("simrank: iterations must be positive, got %d", p.Iterations)
	}
	return nil
}

// Matrix holds the (symmetric) SimRank scores after a fixed number of
// iterations, which are entrywise lower bounds of the true fixed point;
// TailBound is the uniform upper-bound slack C^(t+1).
type Matrix struct {
	n         int
	s         []float64 // row-major n×n
	TailBound float64
	params    Params
}

// Compute runs the naive fixed-point iteration. Memory O(n²).
func Compute(g *graph.Graph, p Params) (*Matrix, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	n := g.N()
	if n == 0 {
		return nil, fmt.Errorf("simrank: empty graph")
	}
	if n > MaxNodes {
		return nil, fmt.Errorf("simrank: graph has %d nodes, dense engine accepts ≤ %d", n, MaxNodes)
	}
	cur := make([]float64, n*n)
	next := make([]float64, n*n)
	for i := 0; i < n; i++ {
		cur[i*n+i] = 1
	}
	for it := 0; it < p.Iterations; it++ {
		for u := 0; u < n; u++ {
			inU := g.InNeighbors(graph.NodeID(u))
			next[u*n+u] = 1
			for v := u + 1; v < n; v++ {
				inV := g.InNeighbors(graph.NodeID(v))
				var acc float64
				if len(inU) > 0 && len(inV) > 0 {
					for _, a := range inU {
						row := int(a) * n
						for _, b := range inV {
							acc += cur[row+int(b)]
						}
					}
					acc *= p.C / (float64(len(inU)) * float64(len(inV)))
				}
				next[u*n+v] = acc
				next[v*n+u] = acc
			}
		}
		cur, next = next, cur
	}
	tail := 1.0
	for i := 0; i <= p.Iterations; i++ {
		tail *= p.C
	}
	return &Matrix{n: n, s: cur, TailBound: tail, params: p}, nil
}

// N returns the node count.
func (m *Matrix) N() int { return m.n }

// Score returns the (iterated) SimRank similarity of u and v — a lower
// bound of the exact score, tight to within TailBound.
func (m *Matrix) Score(u, v graph.NodeID) float64 {
	return m.s[int(u)*m.n+int(v)]
}

// TopK returns the k most similar nodes to u (excluding u itself, whose
// self-similarity 1 is uninformative), descending.
func (m *Matrix) TopK(u graph.NodeID, k int) []vecmath.Entry {
	row := make([]float64, m.n)
	copy(row, m.s[int(u)*m.n:int(u+1)*m.n])
	row[u] = 0
	return vecmath.TopKEntries(row, k)
}

// kthOther returns the k-th largest similarity from u to nodes ≠ u.
func (m *Matrix) kthOther(u graph.NodeID, k int) float64 {
	row := make([]float64, m.n)
	copy(row, m.s[int(u)*m.n:int(u+1)*m.n])
	row[u] = 0
	return vecmath.KthLargest(row, k)
}

// ReverseTopK returns every node u ≠ q that ranks q among its k most
// SimRank-similar nodes (ties admitted, matching the RWR engine's ≥ rule).
// Because the scores carry a uniform additive uncertainty of TailBound,
// membership is decided on the iterated scores directly; callers needing
// tighter guarantees should raise Params.Iterations.
func (m *Matrix) ReverseTopK(q graph.NodeID, k int) ([]graph.NodeID, error) {
	if int(q) < 0 || int(q) >= m.n {
		return nil, fmt.Errorf("simrank: node %d out of range [0,%d)", q, m.n)
	}
	if k <= 0 || k >= m.n {
		return nil, fmt.Errorf("simrank: k=%d outside [1,%d)", k, m.n)
	}
	var out []graph.NodeID
	for u := graph.NodeID(0); int(u) < m.n; u++ {
		if u == q {
			continue
		}
		if m.Score(u, q) >= m.kthOther(u, k) && m.Score(u, q) > 0 {
			out = append(out, u)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, nil
}
