package simrank

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/graph"
)

func testGraph(t testing.TB) *graph.Graph {
	t.Helper()
	// Two "parent" nodes 0,1 both pointing at 2 and 3 make 2 and 3
	// structurally similar; node 4 hangs off node 3 only.
	g, err := graph.FromEdges(5, [][2]graph.NodeID{
		{0, 2}, {0, 3}, {1, 2}, {1, 3}, {3, 4}, {2, 0}, {4, 1},
	}, graph.DanglingSelfLoop)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestComputeBasics(t *testing.T) {
	g := testGraph(t)
	m, err := Compute(g, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if m.N() != 5 {
		t.Fatalf("N = %d", m.N())
	}
	for u := graph.NodeID(0); int(u) < 5; u++ {
		if m.Score(u, u) != 1 {
			t.Errorf("self similarity of %d = %g", u, m.Score(u, u))
		}
		for v := graph.NodeID(0); int(v) < 5; v++ {
			s := m.Score(u, v)
			if s < 0 || s > 1 {
				t.Errorf("score out of range: s(%d,%d)=%g", u, v, s)
			}
			if math.Abs(s-m.Score(v, u)) > 1e-15 {
				t.Errorf("asymmetric: s(%d,%d)=%g s(%d,%d)=%g", u, v, s, v, u, m.Score(v, u))
			}
		}
	}
	// Nodes 2 and 3 share both in-neighbors: their similarity should be
	// the highest off-diagonal score involving either.
	if m.Score(2, 3) <= 0 {
		t.Error("structurally similar pair scored 0")
	}
	if m.Score(2, 3) <= m.Score(2, 4) {
		t.Errorf("s(2,3)=%g not above s(2,4)=%g", m.Score(2, 3), m.Score(2, 4))
	}
}

func TestComputeValidation(t *testing.T) {
	g := testGraph(t)
	if _, err := Compute(g, Params{C: 0, Iterations: 5}); err == nil {
		t.Error("want C error")
	}
	if _, err := Compute(g, Params{C: 0.8, Iterations: 0}); err == nil {
		t.Error("want iterations error")
	}
	empty, _, err := graph.NewBuilder(0).Build(graph.DanglingSelfLoop)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Compute(empty, DefaultParams()); err == nil {
		t.Error("want empty-graph error")
	}
}

func TestIterationMonotonicity(t *testing.T) {
	// More iterations only increase scores (monotone fixed-point map
	// from s₀ = I), and the increase is bounded by the tail bound.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(15)
		b := graph.NewBuilder(n)
		for i := 0; i < 3*n; i++ {
			b.AddEdge(graph.NodeID(rng.Intn(n)), graph.NodeID(rng.Intn(n)))
		}
		g, _, err := b.Build(graph.DanglingSelfLoop)
		if err != nil {
			return false
		}
		short, err := Compute(g, Params{C: 0.8, Iterations: 3})
		if err != nil {
			return false
		}
		long, err := Compute(g, Params{C: 0.8, Iterations: 9})
		if err != nil {
			return false
		}
		for u := graph.NodeID(0); int(u) < n; u++ {
			for v := graph.NodeID(0); int(v) < n; v++ {
				lo, hi := short.Score(u, v), long.Score(u, v)
				if hi < lo-1e-12 {
					return false // not monotone
				}
				if hi > lo+short.TailBound+1e-12 {
					return false // exceeded the tail bound
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestTopKExcludesSelf(t *testing.T) {
	g := testGraph(t)
	m, err := Compute(g, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	top := m.TopK(2, 3)
	for _, e := range top {
		if e.Index == 2 {
			t.Error("TopK includes the node itself")
		}
	}
	if len(top) == 0 || top[0].Index != 3 {
		t.Errorf("most similar to 2 should be 3: %v", top)
	}
}

func TestReverseTopKDefinition(t *testing.T) {
	// Cross-check ReverseTopK against its definition on random graphs.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(12)
		b := graph.NewBuilder(n)
		for i := 0; i < 3*n; i++ {
			b.AddEdge(graph.NodeID(rng.Intn(n)), graph.NodeID(rng.Intn(n)))
		}
		g, _, err := b.Build(graph.DanglingSelfLoop)
		if err != nil {
			return false
		}
		m, err := Compute(g, Params{C: 0.7, Iterations: 7})
		if err != nil {
			return false
		}
		q := graph.NodeID(rng.Intn(n))
		k := 1 + rng.Intn(3)
		got, err := m.ReverseTopK(q, k)
		if err != nil {
			return false
		}
		inAnswer := map[graph.NodeID]bool{}
		for _, u := range got {
			inAnswer[u] = true
		}
		for u := graph.NodeID(0); int(u) < n; u++ {
			if u == q {
				continue
			}
			want := m.Score(u, q) >= m.kthOther(u, k) && m.Score(u, q) > 0
			if want != inAnswer[u] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestReverseTopKValidation(t *testing.T) {
	g := testGraph(t)
	m, err := Compute(g, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.ReverseTopK(99, 2); err == nil {
		t.Error("want range error")
	}
	if _, err := m.ReverseTopK(0, 0); err == nil {
		t.Error("want k error")
	}
	if _, err := m.ReverseTopK(0, 5); err == nil {
		t.Error("want k bound error")
	}
}

func TestStructurallySimilarPairReverseQuery(t *testing.T) {
	g := testGraph(t)
	m, err := Compute(g, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	// Node 3's most similar node is 2 (shared parents), so 3 must appear
	// in the reverse top-1 answer of 2.
	res, err := m.ReverseTopK(2, 1)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, u := range res {
		if u == 3 {
			found = true
		}
	}
	if !found {
		t.Errorf("reverse top-1 of node 2 misses its structural twin 3: %v", res)
	}
}
