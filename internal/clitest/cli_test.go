// Package clitest builds the repository's CLI tools and exercises the
// generate → index → query pipeline end to end, the way a user would.
package clitest

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"
)

// buildTools compiles all the commands into a temp dir once per test run.
func buildTools(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	for _, tool := range []string{"rtkgen", "rtkindex", "rtkquery", "rtkbench", "rtkserve"} {
		out := filepath.Join(dir, tool)
		cmd := exec.Command("go", "build", "-o", out, "./cmd/"+tool)
		cmd.Dir = repoRoot(t)
		if msg, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("building %s: %v\n%s", tool, err, msg)
		}
	}
	return dir
}

func repoRoot(t *testing.T) string {
	t.Helper()
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	return filepath.Dir(filepath.Dir(wd)) // internal/clitest → repo root
}

func runTool(t *testing.T, bin string, args ...string) string {
	t.Helper()
	cmd := exec.Command(bin, args...)
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("%s %v: %v\n%s", filepath.Base(bin), args, err, out)
	}
	return string(out)
}

func TestGenerateIndexQueryPipeline(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries; skipped in -short mode")
	}
	bins := buildTools(t)
	work := t.TempDir()
	graphPath := filepath.Join(work, "g.txt")
	indexPath := filepath.Join(work, "g.idx")

	out := runTool(t, filepath.Join(bins, "rtkgen"),
		"-kind", "web", "-n", "500", "-seed", "3", "-out", graphPath)
	if !strings.Contains(out, "n=500") {
		t.Errorf("rtkgen output missing stats: %q", out)
	}

	out = runTool(t, filepath.Join(bins, "rtkindex"),
		"-graph", graphPath, "-out", indexPath, "-K", "20", "-B", "5")
	if !strings.Contains(out, "hubs:") || !strings.Contains(out, "wrote") {
		t.Errorf("rtkindex output unexpected: %q", out)
	}
	if fi, err := os.Stat(indexPath); err != nil || fi.Size() == 0 {
		t.Fatalf("index file missing or empty: %v", err)
	}

	out = runTool(t, filepath.Join(bins, "rtkquery"),
		"-graph", graphPath, "-index", indexPath, "-q", "42", "-k", "10", "-update", "-save")
	if !strings.Contains(out, "reverse top-10 of node 42") {
		t.Errorf("rtkquery output unexpected: %q", out)
	}
	if !strings.Contains(out, "saved refined index") {
		t.Errorf("rtkquery did not save: %q", out)
	}

	// Approximate mode answers must be reported too.
	out = runTool(t, filepath.Join(bins, "rtkquery"),
		"-graph", graphPath, "-index", indexPath, "-q", "42", "-k", "10", "-approx")
	if !strings.Contains(out, "reverse top-10 of node 42") {
		t.Errorf("rtkquery -approx output unexpected: %q", out)
	}

	// The answer must not depend on how the index is loaded: mmap'd
	// zero-copy (the default), heap (-mmap=off), and a rewritten copy
	// (rtkindex -rewrite, the v1→v2 migration path) all agree.
	baseline := runTool(t, filepath.Join(bins, "rtkquery"),
		"-graph", graphPath, "-index", indexPath, "-q", "42", "-k", "10")
	answer := answerLine(t, baseline)
	heapOut := runTool(t, filepath.Join(bins, "rtkquery"),
		"-graph", graphPath, "-index", indexPath, "-q", "42", "-k", "10", "-mmap=off")
	if got := answerLine(t, heapOut); got != answer {
		t.Errorf("-mmap=off answers differ: %q vs %q", got, answer)
	}
	rewritten := filepath.Join(work, "g.rewritten.idx")
	out = runTool(t, filepath.Join(bins, "rtkindex"), "-rewrite", indexPath, "-out", rewritten)
	if !strings.Contains(out, "format v2") {
		t.Errorf("rtkindex -rewrite output unexpected: %q", out)
	}
	rewOut := runTool(t, filepath.Join(bins, "rtkquery"),
		"-graph", graphPath, "-index", rewritten, "-q", "42", "-k", "10")
	if got := answerLine(t, rewOut); got != answer {
		t.Errorf("rewritten index answers differ: %q vs %q", got, answer)
	}

	// A corrupted index file must be rejected, not served: flip one byte in
	// the middle of the (checksummed v2) image.
	img, err := os.ReadFile(rewritten)
	if err != nil {
		t.Fatal(err)
	}
	img[len(img)/2] ^= 0x10
	corrupt := filepath.Join(work, "g.corrupt.idx")
	if err := os.WriteFile(corrupt, img, 0o644); err != nil {
		t.Fatal(err)
	}
	if msg, err := runToolErr(t, filepath.Join(bins, "rtkquery"),
		"-graph", graphPath, "-index", corrupt, "-q", "42", "-k", "10"); err == nil {
		t.Errorf("rtkquery served a corrupt index:\n%s", msg)
	} else if !strings.Contains(msg, "checksum") {
		t.Errorf("corrupt index error does not mention the checksum: %q", msg)
	}
}

// answerLine extracts the printed answer-set line of an rtkquery run.
func answerLine(t *testing.T, out string) string {
	t.Helper()
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "[") {
			return line
		}
	}
	t.Fatalf("no answer line in rtkquery output:\n%s", out)
	return ""
}

// runToolErr runs a tool expecting a non-zero exit, returning its combined
// output and the exit error.
func runToolErr(t *testing.T, bin string, args ...string) (string, error) {
	t.Helper()
	out, err := exec.Command(bin, args...).CombinedOutput()
	return string(out), err
}

// TestExamplesRun executes the fast runnable examples end to end (the
// slower coauthor and webindex demos are exercised manually; quickstart,
// simrank and spamdetect finish in seconds).
func TestExamplesRun(t *testing.T) {
	if testing.Short() {
		t.Skip("runs example binaries; skipped in -short mode")
	}
	for _, ex := range []struct{ name, marker string }{
		{"quickstart", "brute-force check"},
		{"simrank", "SimRank reverse top-5"},
		{"spamdetect", "LIKELY SPAM"},
	} {
		cmd := exec.Command("go", "run", "./examples/"+ex.name)
		cmd.Dir = repoRoot(t)
		out, err := cmd.CombinedOutput()
		if err != nil {
			t.Fatalf("%s: %v\n%s", ex.name, err, out)
		}
		if !strings.Contains(string(out), ex.marker) {
			t.Errorf("%s output missing %q:\n%s", ex.name, ex.marker, out)
		}
	}
}

func TestGenerateLabeledKinds(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries; skipped in -short mode")
	}
	bins := buildTools(t)
	work := t.TempDir()

	spamPath := filepath.Join(work, "spam.txt")
	labelPath := filepath.Join(work, "spam.labels")
	runTool(t, filepath.Join(bins, "rtkgen"),
		"-kind", "spam", "-scale", "1", "-out", spamPath, "-labels", labelPath)
	labels, err := os.ReadFile(labelPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(labels), "spam") || !strings.Contains(string(labels), "normal") {
		t.Error("label file missing classes")
	}

	coPath := filepath.Join(work, "co.txt")
	authorPath := filepath.Join(work, "authors.tsv")
	runTool(t, filepath.Join(bins, "rtkgen"),
		"-kind", "coauthor", "-scale", "1", "-out", coPath, "-authors", authorPath)
	authors, err := os.ReadFile(authorPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(authors), "Author-00000") {
		t.Error("author file missing entries")
	}
}

// TestServeDaemonEndToEnd drives the rtkserve daemon as a user would:
// generate a graph, build its index, start the daemon, query it over HTTP
// (cold then cached), cross-check the answer against the rtkquery CLI on
// the same graph and index, and finally drain it with SIGTERM.
func TestServeDaemonEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries; skipped in -short mode")
	}
	bins := buildTools(t)
	work := t.TempDir()
	graphPath := filepath.Join(work, "g.txt")
	indexPath := filepath.Join(work, "g.idx")
	runTool(t, filepath.Join(bins, "rtkgen"),
		"-kind", "web", "-n", "300", "-seed", "4", "-out", graphPath)
	runTool(t, filepath.Join(bins, "rtkindex"),
		"-graph", graphPath, "-out", indexPath, "-K", "10", "-B", "5")

	cmd := exec.Command(filepath.Join(bins, "rtkserve"),
		"-graph", graphPath, "-index", indexPath, "-addr", "127.0.0.1:0")
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer cmd.Process.Kill()

	// The daemon logs "listening on 127.0.0.1:PORT" once ready; keep
	// draining its stderr afterwards so the child never blocks on a full
	// pipe.
	addrCh := make(chan string, 1)
	scanDone := make(chan struct{})
	var logBuf bytes.Buffer
	var logMu sync.Mutex
	go func() {
		defer close(scanDone)
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			line := sc.Text()
			logMu.Lock()
			logBuf.WriteString(line + "\n")
			logMu.Unlock()
			if _, addr, ok := strings.Cut(line, "listening on "); ok {
				select {
				case addrCh <- addr:
				default:
				}
			}
		}
	}()
	var base string
	select {
	case addr := <-addrCh:
		base = "http://" + addr
	case <-time.After(30 * time.Second):
		t.Fatal("daemon did not report its listen address")
	}

	httpGet := func(path string) (*http.Response, []byte) {
		t.Helper()
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		return resp, body
	}

	if resp, body := httpGet("/healthz"); resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %d %s", resp.StatusCode, body)
	}
	resp, body := httpGet("/v1/reverse-topk?q=42&k=5")
	if resp.StatusCode != http.StatusOK || resp.Header.Get("X-Cache") != "MISS" {
		t.Fatalf("cold query: %d %s %s", resp.StatusCode, resp.Header.Get("X-Cache"), body)
	}
	var qr struct {
		Epoch   uint64  `json:"epoch"`
		Count   int     `json:"count"`
		Results []int32 `json:"results"`
	}
	if err := json.Unmarshal(body, &qr); err != nil {
		t.Fatalf("bad body %q: %v", body, err)
	}
	resp2, body2 := httpGet("/v1/reverse-topk?q=42&k=5")
	if resp2.Header.Get("X-Cache") != "HIT" || !bytes.Equal(body, body2) {
		t.Fatalf("cached query differs: %s vs %s (X-Cache=%s)", body, body2, resp2.Header.Get("X-Cache"))
	}

	// The CLI on the same graph+index must print the same answer set.
	cliOut := runTool(t, filepath.Join(bins, "rtkquery"),
		"-graph", graphPath, "-index", indexPath, "-q", "42", "-k", "5")
	if want := fmt.Sprint(qr.Results); !strings.Contains(cliOut, want) {
		t.Errorf("daemon answered %s but rtkquery printed:\n%s", want, cliOut)
	}

	if resp, body := httpGet("/v1/stats"); resp.StatusCode != http.StatusOK ||
		!strings.Contains(string(body), `"served":2`) ||
		!strings.Contains(string(body), `"cache_bytes"`) {
		t.Errorf("stats: %d %s", resp.StatusCode, body)
	}

	// CLI and daemon reject bad parameters with the same message (the
	// shared serve.ValidateQueryParams helper).
	for _, bad := range []struct{ q, k string }{{"42", "0"}, {"42", "9999"}, {"100000", "5"}} {
		resp, body := httpGet("/v1/reverse-topk?q=" + bad.q + "&k=" + bad.k)
		if resp.StatusCode == http.StatusOK {
			t.Fatalf("daemon accepted q=%s k=%s", bad.q, bad.k)
		}
		var httpErr struct {
			Error string `json:"error"`
		}
		if err := json.Unmarshal(body, &httpErr); err != nil {
			t.Fatalf("bad error body %q: %v", body, err)
		}
		cliMsg, err := runToolErr(t, filepath.Join(bins, "rtkquery"),
			"-graph", graphPath, "-index", indexPath, "-q", bad.q, "-k", bad.k)
		if err == nil {
			t.Fatalf("rtkquery accepted q=%s k=%s:\n%s", bad.q, bad.k, cliMsg)
		}
		if !strings.Contains(cliMsg, httpErr.Error) {
			t.Errorf("q=%s k=%s: CLI message %q does not contain the daemon's %q", bad.q, bad.k, cliMsg, httpErr.Error)
		}
	}

	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	// Let the stderr scanner reach EOF before Wait: Wait closes the pipe,
	// which could otherwise drop the daemon's final drain log lines.
	select {
	case <-scanDone:
	case <-time.After(30 * time.Second):
		t.Fatal("daemon stderr never reached EOF after SIGTERM")
	}
	if err := cmd.Wait(); err != nil {
		logMu.Lock()
		defer logMu.Unlock()
		t.Fatalf("daemon exited non-zero after SIGTERM: %v\n%s", err, logBuf.String())
	}
	logMu.Lock()
	defer logMu.Unlock()
	if !strings.Contains(logBuf.String(), "drained") {
		t.Errorf("daemon log missing drain confirmation:\n%s", logBuf.String())
	}
}
