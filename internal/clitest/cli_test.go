// Package clitest builds the repository's CLI tools and exercises the
// generate → index → query pipeline end to end, the way a user would.
package clitest

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildTools compiles all four commands into a temp dir once per test run.
func buildTools(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	for _, tool := range []string{"rtkgen", "rtkindex", "rtkquery", "rtkbench"} {
		out := filepath.Join(dir, tool)
		cmd := exec.Command("go", "build", "-o", out, "./cmd/"+tool)
		cmd.Dir = repoRoot(t)
		if msg, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("building %s: %v\n%s", tool, err, msg)
		}
	}
	return dir
}

func repoRoot(t *testing.T) string {
	t.Helper()
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	return filepath.Dir(filepath.Dir(wd)) // internal/clitest → repo root
}

func runTool(t *testing.T, bin string, args ...string) string {
	t.Helper()
	cmd := exec.Command(bin, args...)
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("%s %v: %v\n%s", filepath.Base(bin), args, err, out)
	}
	return string(out)
}

func TestGenerateIndexQueryPipeline(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries; skipped in -short mode")
	}
	bins := buildTools(t)
	work := t.TempDir()
	graphPath := filepath.Join(work, "g.txt")
	indexPath := filepath.Join(work, "g.idx")

	out := runTool(t, filepath.Join(bins, "rtkgen"),
		"-kind", "web", "-n", "500", "-seed", "3", "-out", graphPath)
	if !strings.Contains(out, "n=500") {
		t.Errorf("rtkgen output missing stats: %q", out)
	}

	out = runTool(t, filepath.Join(bins, "rtkindex"),
		"-graph", graphPath, "-out", indexPath, "-K", "20", "-B", "5")
	if !strings.Contains(out, "hubs:") || !strings.Contains(out, "wrote") {
		t.Errorf("rtkindex output unexpected: %q", out)
	}
	if fi, err := os.Stat(indexPath); err != nil || fi.Size() == 0 {
		t.Fatalf("index file missing or empty: %v", err)
	}

	out = runTool(t, filepath.Join(bins, "rtkquery"),
		"-graph", graphPath, "-index", indexPath, "-q", "42", "-k", "10", "-update", "-save")
	if !strings.Contains(out, "reverse top-10 of node 42") {
		t.Errorf("rtkquery output unexpected: %q", out)
	}
	if !strings.Contains(out, "saved refined index") {
		t.Errorf("rtkquery did not save: %q", out)
	}

	// Approximate mode answers must be reported too.
	out = runTool(t, filepath.Join(bins, "rtkquery"),
		"-graph", graphPath, "-index", indexPath, "-q", "42", "-k", "10", "-approx")
	if !strings.Contains(out, "reverse top-10 of node 42") {
		t.Errorf("rtkquery -approx output unexpected: %q", out)
	}
}

// TestExamplesRun executes the fast runnable examples end to end (the
// slower coauthor and webindex demos are exercised manually; quickstart,
// simrank and spamdetect finish in seconds).
func TestExamplesRun(t *testing.T) {
	if testing.Short() {
		t.Skip("runs example binaries; skipped in -short mode")
	}
	for _, ex := range []struct{ name, marker string }{
		{"quickstart", "brute-force check"},
		{"simrank", "SimRank reverse top-5"},
		{"spamdetect", "LIKELY SPAM"},
	} {
		cmd := exec.Command("go", "run", "./examples/"+ex.name)
		cmd.Dir = repoRoot(t)
		out, err := cmd.CombinedOutput()
		if err != nil {
			t.Fatalf("%s: %v\n%s", ex.name, err, out)
		}
		if !strings.Contains(string(out), ex.marker) {
			t.Errorf("%s output missing %q:\n%s", ex.name, ex.marker, out)
		}
	}
}

func TestGenerateLabeledKinds(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries; skipped in -short mode")
	}
	bins := buildTools(t)
	work := t.TempDir()

	spamPath := filepath.Join(work, "spam.txt")
	labelPath := filepath.Join(work, "spam.labels")
	runTool(t, filepath.Join(bins, "rtkgen"),
		"-kind", "spam", "-scale", "1", "-out", spamPath, "-labels", labelPath)
	labels, err := os.ReadFile(labelPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(labels), "spam") || !strings.Contains(string(labels), "normal") {
		t.Error("label file missing classes")
	}

	coPath := filepath.Join(work, "co.txt")
	authorPath := filepath.Join(work, "authors.tsv")
	runTool(t, filepath.Join(bins, "rtkgen"),
		"-kind", "coauthor", "-scale", "1", "-out", coPath, "-authors", authorPath)
	authors, err := os.ReadFile(authorPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(authors), "Author-00000") {
		t.Error("author file missing entries")
	}
}
