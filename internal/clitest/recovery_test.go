package clitest

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"repro/internal/wal"
)

// daemon wraps one running rtkserve process: its base URL, its captured
// stderr log, and kill/terminate plumbing.
type daemon struct {
	cmd      *exec.Cmd
	base     string
	scanDone chan struct{}
	logMu    sync.Mutex
	logBuf   bytes.Buffer
}

// startDaemon launches rtkserve with the given flags and waits for its
// "listening on" line.
func startDaemon(t *testing.T, bin string, args ...string) *daemon {
	t.Helper()
	d := &daemon{
		cmd:      exec.Command(bin, args...),
		scanDone: make(chan struct{}),
	}
	stderr, err := d.cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := d.cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { d.cmd.Process.Kill(); d.cmd.Wait() })
	addrCh := make(chan string, 1)
	go func() {
		defer close(d.scanDone)
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			line := sc.Text()
			d.logMu.Lock()
			d.logBuf.WriteString(line + "\n")
			d.logMu.Unlock()
			if _, addr, ok := strings.Cut(line, "listening on "); ok {
				select {
				case addrCh <- addr:
				default:
				}
			}
		}
	}()
	select {
	case addr := <-addrCh:
		d.base = "http://" + addr
	case <-time.After(30 * time.Second):
		t.Fatalf("daemon did not report its listen address:\n%s", d.log())
	}
	return d
}

func (d *daemon) log() string {
	d.logMu.Lock()
	defer d.logMu.Unlock()
	return d.logBuf.String()
}

// kill9 hard-kills the daemon — no drain, no journal close, the crash the
// write-ahead journal exists for.
func (d *daemon) kill9(t *testing.T) {
	t.Helper()
	if err := d.cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	<-d.scanDone
	d.cmd.Wait() // non-zero by construction
}

func (d *daemon) get(t *testing.T, path string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(d.base + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, body
}

func (d *daemon) postEdits(t *testing.T, body string) (int, []byte) {
	t.Helper()
	resp, err := http.Post(d.base+"/v1/edits", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST edits: %v", err)
	}
	raw, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, raw
}

func (d *daemon) stats(t *testing.T) map[string]any {
	t.Helper()
	code, body := d.get(t, "/v1/stats")
	if code != http.StatusOK {
		t.Fatalf("stats: %d %s", code, body)
	}
	var st map[string]any
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	return st
}

func (d *daemon) statInt(t *testing.T, key string) int64 {
	t.Helper()
	v, _ := d.stats(t)[key].(float64)
	return int64(v)
}

// burstBatches is the edit burst both the crashing daemon and the oracle
// receive: growing inserts with varied weights and thetas, plus one batch
// (index 6) that passes enqueue validation but is deterministically
// rejected at apply time — its watermark is still consumed and journaled.
func burstBatches() []string {
	var batches []string
	for i := 0; i < 6; i++ {
		weight := ""
		if i%2 == 1 {
			weight = `,"weight":1.5`
		}
		theta := 0.0
		if i%3 != 0 {
			theta = 0.5
		}
		batches = append(batches, fmt.Sprintf(
			`{"edits":[{"from":%d,"to":%d%s}],"theta":%g}`, 300+i, (i*37)%300, weight, theta))
	}
	batches = append(batches,
		`{"edits":[{"from":350,"to":0,"remove":true}]}`, // rejected when applied
		`{"edits":[{"from":306,"to":5}]}`)
	return batches
}

// TestServeCrashRecovery is the acceptance test for the durable journal:
// SIGKILL the daemon the moment the last edit of a burst is acknowledged,
// restart it with the same -journal, and require every query answer to be
// bit-identical to an oracle daemon that received the same burst and never
// crashed. A second round appends a torn final record (plus garbage) to
// the journal — the residue of dying mid-append — which recovery must
// truncate away without losing any acknowledged batch.
func TestServeCrashRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries; skipped in -short mode")
	}
	bins := buildTools(t)
	work := t.TempDir()
	graphPath := filepath.Join(work, "g.txt")
	indexPath := filepath.Join(work, "g.idx")
	journalPath := filepath.Join(work, "edits.wal")
	runTool(t, filepath.Join(bins, "rtkgen"),
		"-kind", "web", "-n", "300", "-seed", "4", "-out", graphPath)
	runTool(t, filepath.Join(bins, "rtkindex"),
		"-graph", graphPath, "-out", indexPath, "-K", "10", "-B", "5")
	rtkserve := filepath.Join(bins, "rtkserve")
	durableArgs := []string{
		"-graph", graphPath, "-index", indexPath, "-addr", "127.0.0.1:0",
		"-journal", journalPath, "-checkpoint-dir", filepath.Join(work, "ckpt"),
	}

	batches := burstBatches()

	// Burst the edits at the durable daemon asynchronously and SIGKILL it
	// as soon as the last 202 lands — acknowledged, journaled, but with the
	// maintenance pipeline likely still mid-burst.
	a := startDaemon(t, rtkserve, durableArgs...)
	for i, b := range batches {
		code, raw := a.postEdits(t, b)
		if code != http.StatusAccepted {
			t.Fatalf("batch %d: status %d body %s", i, code, raw)
		}
		var er struct {
			Watermark uint64 `json:"watermark"`
		}
		if err := json.Unmarshal(raw, &er); err != nil || er.Watermark != uint64(i+1) {
			t.Fatalf("batch %d: watermark %d (err %v), want %d", i, er.Watermark, err, i+1)
		}
	}
	a.kill9(t)

	// The oracle applies the identical burst synchronously and never dies.
	oracle := startDaemon(t, rtkserve,
		"-graph", graphPath, "-index", indexPath, "-addr", "127.0.0.1:0")
	for i, b := range batches {
		body := strings.TrimSuffix(b, "}") + `,"wait":true}`
		code, raw := oracle.postEdits(t, body)
		want := http.StatusOK
		if i == 6 {
			want = http.StatusBadRequest
		}
		if code != want {
			t.Fatalf("oracle batch %d: status %d body %s, want %d", i, code, raw, want)
		}
	}

	checkRecovered := func(d *daemon, phase string) {
		t.Helper()
		if wm := d.statInt(t, "applied_watermark"); wm != int64(len(batches)) {
			t.Fatalf("%s: applied watermark %d, want %d\n%s", phase, wm, len(batches), d.log())
		}
		if got := d.statInt(t, "replayed_batches"); got != int64(len(batches)) {
			t.Fatalf("%s: replayed %d batches, want %d", phase, got, len(batches))
		}
		if errs := d.statInt(t, "maint_errors"); errs != 1 {
			t.Fatalf("%s: %d maintenance errors after replay, want 1 (the rejected batch)", phase, errs)
		}
		nodes := d.statInt(t, "nodes")
		if oracleNodes := oracle.statInt(t, "nodes"); nodes != oracleNodes {
			t.Fatalf("%s: %d nodes vs oracle's %d", phase, nodes, oracleNodes)
		}
		for q := int64(0); q < nodes; q++ {
			path := fmt.Sprintf("/v1/reverse-topk?q=%d&k=5", q)
			code, got := d.get(t, path)
			oCode, want := oracle.get(t, path)
			if code != http.StatusOK || oCode != http.StatusOK {
				t.Fatalf("%s: query %d: statuses %d/%d", phase, q, code, oCode)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("%s: query %d diverged after recovery:\n recovered: %s\n oracle:    %s", phase, q, got, want)
			}
		}
	}

	// Round 1: plain SIGKILL recovery.
	b := startDaemon(t, rtkserve, durableArgs...)
	if !strings.Contains(b.log(), "replayed") {
		t.Fatalf("recovery log missing replay line:\n%s", b.log())
	}
	checkRecovered(b, "sigkill")
	b.kill9(t)

	// Round 2: torn final record. Append a half-written (unacknowledged)
	// record and then raw garbage — recovery must drop exactly that tail.
	torn := wal.AppendRecord(nil, wal.Record{Watermark: uint64(len(batches)) + 1, Theta: 0.25})
	torn = append(torn[:len(torn)-4], 0xde, 0xad)
	f, err := os.OpenFile(journalPath, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(torn); err != nil {
		t.Fatal(err)
	}
	f.Close()

	c := startDaemon(t, rtkserve, durableArgs...)
	if log := c.log(); !strings.Contains(log, "torn tail truncated") {
		t.Fatalf("recovery log missing torn-tail line:\n%s", log)
	}
	checkRecovered(c, "torn tail")

	// The recovered daemon keeps serving writes: one more synchronous batch
	// continues the watermark sequence, and a graceful SIGTERM drains.
	code, raw := c.postEdits(t, `{"edits":[{"from":307,"to":9}],"wait":true}`)
	if code != http.StatusOK {
		t.Fatalf("post-recovery edit: %d %s", code, raw)
	}
	if wm := c.statInt(t, "applied_watermark"); wm != int64(len(batches))+1 {
		t.Fatalf("post-recovery watermark %d, want %d", wm, len(batches)+1)
	}
	if err := c.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	<-c.scanDone
	if err := c.cmd.Wait(); err != nil {
		t.Fatalf("daemon exited non-zero after SIGTERM: %v\n%s", err, c.log())
	}
}
