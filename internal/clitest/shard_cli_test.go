package clitest

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestShardedIndexQueryPipeline: rtkindex -partition writes slice files in
// one pass; rtkquery -shards answers through the in-process coordinator,
// bit-identically to the unsharded query.
func TestShardedIndexQueryPipeline(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries; skipped in -short mode")
	}
	bins := buildTools(t)
	work := t.TempDir()
	graphPath := filepath.Join(work, "g.txt")
	indexPath := filepath.Join(work, "g.idx")
	runTool(t, filepath.Join(bins, "rtkgen"),
		"-kind", "web", "-n", "400", "-seed", "8", "-out", graphPath)

	out := runTool(t, filepath.Join(bins, "rtkindex"),
		"-graph", graphPath, "-out", indexPath, "-K", "20", "-B", "6",
		"-partition", "2", "-strategy", "balanced")
	for s := 0; s < 2; s++ {
		if !strings.Contains(out, fmt.Sprintf("g.idx.shard%dof2", s)) {
			t.Fatalf("rtkindex did not report shard %d file:\n%s", s, out)
		}
	}

	baseline := runTool(t, filepath.Join(bins, "rtkquery"),
		"-graph", graphPath, "-index", indexPath, "-q", "42", "-k", "10")
	want := answerLine(t, baseline)

	shardArg := indexPath + ".shard0of2," + indexPath + ".shard1of2"
	sharded := runTool(t, filepath.Join(bins, "rtkquery"),
		"-graph", graphPath, "-shards", shardArg, "-q", "42", "-k", "10")
	if got := answerLine(t, sharded); got != want {
		t.Errorf("sharded answer differs: %q vs %q", got, want)
	}
	if !strings.Contains(sharded, "pruned_by_bound=") {
		t.Errorf("sharded query did not report pruning stats:\n%s", sharded)
	}

	// Unknown partitioner and experiment names must fail with the menu of
	// valid values, not a bare error.
	if msg, err := runToolErr(t, filepath.Join(bins, "rtkindex"),
		"-graph", graphPath, "-out", indexPath, "-partition", "2", "-strategy", "bogus"); err == nil {
		t.Error("rtkindex accepted an unknown -strategy")
	} else if !strings.Contains(msg, "hash, range, balanced") {
		t.Errorf("rtkindex -strategy error lacks valid values: %q", msg)
	}
	if msg, err := runToolErr(t, filepath.Join(bins, "rtkindex"),
		"-graph", graphPath, "-out", indexPath, "-hubs", "bogus"); err == nil {
		t.Error("rtkindex accepted an unknown -hubs scheme")
	} else if !strings.Contains(msg, "degree, greedy, none") {
		t.Errorf("rtkindex -hubs error lacks valid values: %q", msg)
	}
	if msg, err := runToolErr(t, filepath.Join(bins, "rtkbench"), "-exp", "bogus"); err == nil {
		t.Error("rtkbench accepted an unknown -exp")
	} else if !strings.Contains(msg, "valid -exp values") || !strings.Contains(msg, "shard") {
		t.Errorf("rtkbench -exp error lacks the experiment menu: %q", msg)
	}
}

// startDaemonCLI launches an rtkserve process and returns its base URL once
// it reports the listen address; the returned stop function kills it.
func startDaemonCLI(t *testing.T, bin string, args ...string) (string, func()) {
	t.Helper()
	cmd := exec.Command(bin, args...)
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	addrCh := make(chan string, 1)
	var logBuf bytes.Buffer
	var logMu sync.Mutex
	go func() {
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			line := sc.Text()
			logMu.Lock()
			logBuf.WriteString(line + "\n")
			logMu.Unlock()
			if _, addr, ok := strings.Cut(line, "listening on "); ok {
				select {
				case addrCh <- addr:
				default:
				}
			}
		}
	}()
	select {
	case addr := <-addrCh:
		return "http://" + addr, func() { cmd.Process.Kill() }
	case <-time.After(30 * time.Second):
		cmd.Process.Kill()
		logMu.Lock()
		defer logMu.Unlock()
		t.Fatalf("daemon %v did not report its listen address; log:\n%s", args, logBuf.String())
		return "", nil
	}
}

// TestShardedServeEndToEnd: two stock shard daemons over slice files, a
// coordinator in front (rtkserve -shards), answers matching the unsharded
// daemon.
func TestShardedServeEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries; skipped in -short mode")
	}
	bins := buildTools(t)
	work := t.TempDir()
	graphPath := filepath.Join(work, "g.txt")
	indexPath := filepath.Join(work, "g.idx")
	runTool(t, filepath.Join(bins, "rtkgen"),
		"-kind", "web", "-n", "300", "-seed", "9", "-out", graphPath)
	runTool(t, filepath.Join(bins, "rtkindex"),
		"-graph", graphPath, "-out", indexPath, "-K", "12", "-B", "5", "-partition", "2", "-strategy", "range")

	serveBin := filepath.Join(bins, "rtkserve")
	fullURL, stopFull := startDaemonCLI(t, serveBin,
		"-graph", graphPath, "-index", indexPath, "-addr", "127.0.0.1:0")
	defer stopFull()
	s0URL, stop0 := startDaemonCLI(t, serveBin,
		"-graph", graphPath, "-index", indexPath+".shard0of2", "-addr", "127.0.0.1:0")
	defer stop0()
	s1URL, stop1 := startDaemonCLI(t, serveBin,
		"-graph", graphPath, "-index", indexPath+".shard1of2", "-addr", "127.0.0.1:0")
	defer stop1()
	coordURL, stopCoord := startDaemonCLI(t, serveBin,
		"-shards", strings.TrimPrefix(s0URL, "http://")+","+strings.TrimPrefix(s1URL, "http://"),
		"-addr", "127.0.0.1:0")
	defer stopCoord()

	get := func(base, path string) []byte {
		t.Helper()
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s%s: %v", base, path, err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s%s: %d %s", base, path, resp.StatusCode, body)
		}
		return body
	}

	for _, qk := range []string{"q=42&k=5", "q=0&k=1", "q=299&k=12"} {
		var want, got struct {
			Count   int     `json:"count"`
			Results []int32 `json:"results"`
		}
		if err := json.Unmarshal(get(fullURL, "/v1/reverse-topk?"+qk), &want); err != nil {
			t.Fatal(err)
		}
		if err := json.Unmarshal(get(coordURL, "/v1/reverse-topk?"+qk), &got); err != nil {
			t.Fatal(err)
		}
		if got.Count != want.Count || len(got.Results) != len(want.Results) {
			t.Fatalf("%s: coordinator %+v, full daemon %+v", qk, got, want)
		}
		for i := range want.Results {
			if got.Results[i] != want.Results[i] {
				t.Fatalf("%s: coordinator %+v, full daemon %+v", qk, got, want)
			}
		}
	}

	var stats struct {
		Shards     int               `json:"shards"`
		ShardStats []json.RawMessage `json:"shard_stats"`
	}
	if err := json.Unmarshal(get(coordURL, "/v1/stats"), &stats); err != nil {
		t.Fatal(err)
	}
	if stats.Shards != 2 || len(stats.ShardStats) != 2 {
		t.Fatalf("coordinator stats: %+v", stats)
	}
	if body := get(coordURL, "/healthz"); !strings.Contains(string(body), "ok") {
		t.Fatalf("coordinator healthz: %s", body)
	}
}
