package workload

import (
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"

	"repro/internal/graph"
)

func TestQueries(t *testing.T) {
	qs, err := Queries(100, 50, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(qs) != 50 {
		t.Fatalf("len = %d", len(qs))
	}
	for _, q := range qs {
		if q < 0 || q >= 100 {
			t.Fatalf("query %d out of range", q)
		}
	}
	again, err := Queries(100, 50, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := range qs {
		if qs[i] != again[i] {
			t.Fatal("not deterministic")
		}
	}
	other, err := Queries(100, 50, 2)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range qs {
		if qs[i] != other[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds gave identical workloads")
	}
	if _, err := Queries(0, 5, 1); err == nil {
		t.Error("want n error")
	}
	if _, err := Queries(10, -1, 1); err == nil {
		t.Error("want count error")
	}
}

func TestAllNodes(t *testing.T) {
	qs := AllNodes(4)
	if len(qs) != 4 || qs[0] != 0 || qs[3] != 3 {
		t.Fatalf("AllNodes = %v", qs)
	}
}

// TestDriveHTTP drives a stub daemon and checks request accounting:
// statuses and X-Cache classes are tallied correctly and latency stats are
// populated.
func TestDriveHTTP(t *testing.T) {
	var n atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/v1/reverse-topk" || r.URL.Query().Get("q") == "" || r.URL.Query().Get("k") != "5" {
			t.Errorf("unexpected request %s", r.URL)
		}
		switch n.Add(1) % 4 {
		case 0:
			w.WriteHeader(http.StatusServiceUnavailable)
		case 1:
			w.Header().Set("X-Cache", "HIT")
			w.Write([]byte(`{}`))
		case 2:
			w.Header().Set("X-Cache", "COALESCED")
			w.Write([]byte(`{}`))
		default:
			w.Header().Set("X-Cache", "MISS")
			w.Write([]byte(`{}`))
		}
	}))
	defer ts.Close()

	queries := make([]graph.NodeID, 40)
	stats, err := DriveHTTP(ts.URL, queries, 5, 4)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Requests != 40 {
		t.Errorf("requests %d, want 40", stats.Requests)
	}
	if stats.OK != 30 || stats.Rejected != 10 || stats.Errors != 0 {
		t.Errorf("ok/rejected/errors = %d/%d/%d, want 30/10/0", stats.OK, stats.Rejected, stats.Errors)
	}
	if stats.CacheHits != 10 || stats.Coalesced != 10 || stats.Computed != 10 {
		t.Errorf("hits/coalesced/computed = %d/%d/%d, want 10/10/10",
			stats.CacheHits, stats.Coalesced, stats.Computed)
	}
	if stats.QPS <= 0 || stats.MeanLatency <= 0 || stats.P95Latency < stats.P50Latency || stats.MaxLatency < stats.P95Latency {
		t.Errorf("implausible latency stats %+v", stats)
	}
}

// TestDriveHTTPAllFailing must return an error, not divide by zero.
func TestDriveHTTPAllFailing(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusServiceUnavailable)
	}))
	defer ts.Close()
	if _, err := DriveHTTP(ts.URL, make([]graph.NodeID, 5), 3, 2); err == nil {
		t.Fatal("DriveHTTP succeeded with zero OK responses")
	}
	if _, err := DriveHTTP(ts.URL, nil, 3, 2); err == nil {
		t.Fatal("DriveHTTP accepted an empty workload")
	}
}

func TestJaccard(t *testing.T) {
	cases := []struct {
		a, b []graph.NodeID
		want float64
	}{
		{nil, nil, 1},
		{[]graph.NodeID{1, 2}, []graph.NodeID{1, 2}, 1},
		{[]graph.NodeID{1, 2}, []graph.NodeID{2, 3}, 1.0 / 3},
		{[]graph.NodeID{1}, nil, 0},
		{[]graph.NodeID{1, 1, 2}, []graph.NodeID{2, 2, 1}, 1}, // duplicates ignored
		{[]graph.NodeID{1, 2, 3, 4}, []graph.NodeID{1, 2}, 0.5},
	}
	for i, c := range cases {
		if got := Jaccard(c.a, c.b); got != c.want {
			t.Errorf("case %d: Jaccard = %g, want %g", i, got, c.want)
		}
		if got := Jaccard(c.b, c.a); got != c.want {
			t.Errorf("case %d: Jaccard not symmetric", i)
		}
	}
}
