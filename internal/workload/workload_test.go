package workload

import (
	"testing"

	"repro/internal/graph"
)

func TestQueries(t *testing.T) {
	qs, err := Queries(100, 50, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(qs) != 50 {
		t.Fatalf("len = %d", len(qs))
	}
	for _, q := range qs {
		if q < 0 || q >= 100 {
			t.Fatalf("query %d out of range", q)
		}
	}
	again, err := Queries(100, 50, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := range qs {
		if qs[i] != again[i] {
			t.Fatal("not deterministic")
		}
	}
	other, err := Queries(100, 50, 2)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range qs {
		if qs[i] != other[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds gave identical workloads")
	}
	if _, err := Queries(0, 5, 1); err == nil {
		t.Error("want n error")
	}
	if _, err := Queries(10, -1, 1); err == nil {
		t.Error("want count error")
	}
}

func TestAllNodes(t *testing.T) {
	qs := AllNodes(4)
	if len(qs) != 4 || qs[0] != 0 || qs[3] != 3 {
		t.Fatalf("AllNodes = %v", qs)
	}
}

func TestJaccard(t *testing.T) {
	cases := []struct {
		a, b []graph.NodeID
		want float64
	}{
		{nil, nil, 1},
		{[]graph.NodeID{1, 2}, []graph.NodeID{1, 2}, 1},
		{[]graph.NodeID{1, 2}, []graph.NodeID{2, 3}, 1.0 / 3},
		{[]graph.NodeID{1}, nil, 0},
		{[]graph.NodeID{1, 1, 2}, []graph.NodeID{2, 2, 1}, 1}, // duplicates ignored
		{[]graph.NodeID{1, 2, 3, 4}, []graph.NodeID{1, 2}, 0.5},
	}
	for i, c := range cases {
		if got := Jaccard(c.a, c.b); got != c.want {
			t.Errorf("case %d: Jaccard = %g, want %g", i, got, c.want)
		}
		if got := Jaccard(c.b, c.a); got != c.want {
			t.Errorf("case %d: Jaccard not symmetric", i)
		}
	}
}
