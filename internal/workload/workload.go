// Package workload provides seeded query-workload construction and
// result-set accounting for the experiment harness: uniform query sampling
// (the paper's 500-query workloads, §5.3), all-node sweeps (Fig. 8), and
// the Jaccard similarity used to quantify the rounding effect (Fig. 9).
package workload

import (
	"fmt"
	"math/rand"

	"repro/internal/graph"
)

// Queries samples `count` query nodes uniformly (with replacement) from a
// graph with n nodes. Deterministic for a fixed seed.
func Queries(n, count int, seed int64) ([]graph.NodeID, error) {
	if n <= 0 {
		return nil, fmt.Errorf("workload: need a non-empty graph, n=%d", n)
	}
	if count < 0 {
		return nil, fmt.Errorf("workload: negative count %d", count)
	}
	rng := rand.New(rand.NewSource(seed))
	qs := make([]graph.NodeID, count)
	for i := range qs {
		qs[i] = graph.NodeID(rng.Intn(n))
	}
	return qs, nil
}

// AllNodes returns the exhaustive workload 0..n−1 (Fig. 8 runs every node
// of Web-stanford-cs as a query).
func AllNodes(n int) []graph.NodeID {
	qs := make([]graph.NodeID, n)
	for i := range qs {
		qs[i] = graph.NodeID(i)
	}
	return qs
}

// Jaccard computes |a∩b| / |a∪b| over two node sets given as slices
// (duplicates ignored). Two empty sets have similarity 1 — a query whose
// answer is empty under both indexes agrees perfectly.
func Jaccard(a, b []graph.NodeID) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 1
	}
	inA := make(map[graph.NodeID]bool, len(a))
	for _, u := range a {
		inA[u] = true
	}
	inter, union := 0, len(inA)
	seenB := make(map[graph.NodeID]bool, len(b))
	for _, u := range b {
		if seenB[u] {
			continue
		}
		seenB[u] = true
		if inA[u] {
			inter++
		} else {
			union++
		}
	}
	return float64(inter) / float64(union)
}
