// Package workload provides seeded query-workload construction and
// result-set accounting for the experiment harness: uniform query sampling
// (the paper's 500-query workloads, §5.3), all-node sweeps (Fig. 8), and
// the Jaccard similarity used to quantify the rounding effect (Fig. 9).
package workload

import (
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sort"
	"sync"
	"time"

	"repro/internal/graph"
)

// Queries samples `count` query nodes uniformly (with replacement) from a
// graph with n nodes. Deterministic for a fixed seed.
func Queries(n, count int, seed int64) ([]graph.NodeID, error) {
	if n <= 0 {
		return nil, fmt.Errorf("workload: need a non-empty graph, n=%d", n)
	}
	if count < 0 {
		return nil, fmt.Errorf("workload: negative count %d", count)
	}
	rng := rand.New(rand.NewSource(seed))
	qs := make([]graph.NodeID, count)
	for i := range qs {
		qs[i] = graph.NodeID(rng.Intn(n))
	}
	return qs, nil
}

// AllNodes returns the exhaustive workload 0..n−1 (Fig. 8 runs every node
// of Web-stanford-cs as a query).
func AllNodes(n int) []graph.NodeID {
	qs := make([]graph.NodeID, n)
	for i := range qs {
		qs[i] = graph.NodeID(i)
	}
	return qs
}

// DriveStats aggregates one HTTP load-driving run against an rtkserve
// daemon.
type DriveStats struct {
	// Requests is the total issued; OK the 200s; Rejected the 503s
	// (admission control); Errors everything else (including transport
	// failures).
	Requests, OK, Rejected, Errors int
	// CacheHits / Coalesced / Computed classify the 200s by the server's
	// X-Cache header (HIT, COALESCED, and MISS or BYPASS respectively).
	CacheHits, Coalesced, Computed int
	// Elapsed is the wall-clock span of the run; QPS is OK/Elapsed.
	Elapsed time.Duration
	QPS     float64
	// Latency percentiles over successful requests.
	MeanLatency, P50Latency, P95Latency, MaxLatency time.Duration
}

// DriveHTTP fires the query workload at an rtkserve daemon over HTTP with
// the given client-side concurrency and returns throughput and latency
// statistics. Rejections (503) and errors are counted, not fatal — only a
// transport-level failure on every request yields an error.
func DriveHTTP(baseURL string, queries []graph.NodeID, k, concurrency int) (DriveStats, error) {
	if len(queries) == 0 {
		return DriveStats{}, fmt.Errorf("workload: empty query workload")
	}
	if concurrency < 1 {
		concurrency = 1
	}
	client := &http.Client{Timeout: 60 * time.Second}
	var (
		mu        sync.Mutex
		stats     DriveStats
		latencies []time.Duration
	)
	jobs := make(chan graph.NodeID)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < concurrency; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for q := range jobs {
				url := fmt.Sprintf("%s/v1/reverse-topk?q=%d&k=%d", baseURL, q, k)
				t0 := time.Now()
				resp, err := client.Get(url)
				lat := time.Since(t0)
				mu.Lock()
				stats.Requests++
				if err != nil {
					stats.Errors++
					mu.Unlock()
					continue
				}
				switch resp.StatusCode {
				case http.StatusOK:
					stats.OK++
					latencies = append(latencies, lat)
					switch resp.Header.Get("X-Cache") {
					case "HIT":
						stats.CacheHits++
					case "COALESCED":
						stats.Coalesced++
					default:
						stats.Computed++
					}
				case http.StatusServiceUnavailable:
					stats.Rejected++
				default:
					stats.Errors++
				}
				mu.Unlock()
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}()
	}
	for _, q := range queries {
		jobs <- q
	}
	close(jobs)
	wg.Wait()
	stats.Elapsed = time.Since(start)

	if stats.OK == 0 {
		return stats, fmt.Errorf("workload: no successful responses from %s (%d rejected, %d errors)",
			baseURL, stats.Rejected, stats.Errors)
	}
	stats.QPS = float64(stats.OK) / stats.Elapsed.Seconds()
	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	var sum time.Duration
	for _, l := range latencies {
		sum += l
	}
	stats.MeanLatency = sum / time.Duration(len(latencies))
	stats.P50Latency = latencies[len(latencies)/2]
	stats.P95Latency = latencies[len(latencies)*95/100]
	stats.MaxLatency = latencies[len(latencies)-1]
	return stats, nil
}

// Jaccard computes |a∩b| / |a∪b| over two node sets given as slices
// (duplicates ignored). Two empty sets have similarity 1 — a query whose
// answer is empty under both indexes agrees perfectly.
func Jaccard(a, b []graph.NodeID) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 1
	}
	inA := make(map[graph.NodeID]bool, len(a))
	for _, u := range a {
		inA[u] = true
	}
	inter, union := 0, len(inA)
	seenB := make(map[graph.NodeID]bool, len(b))
	for _, u := range b {
		if seenB[u] {
			continue
		}
		seenB[u] = true
		if inA[u] {
			inter++
		} else {
			union++
		}
	}
	return float64(inter) / float64(union)
}
