package bca

import (
	"fmt"
	"sync"
)

// Pool is a concurrency-safe free list of Workspaces for one graph size.
// The sharded candidate-decision loop of the query engine draws one
// workspace per shard worker from a shared pool so that a query at W workers
// allocates at most W workspaces over the engine's lifetime instead of W per
// query (a workspace carries four dense n-vectors, so per-query allocation
// would dwarf the work it supports on large graphs).
type Pool struct {
	n    int
	pool sync.Pool
}

// NewPool creates a pool of Workspaces for graphs with n nodes.
func NewPool(n int) *Pool {
	p := &Pool{n: n}
	p.pool.New = func() any { return NewWorkspace(n) }
	return p
}

// N returns the node count the pooled workspaces are sized for.
func (p *Pool) N() int { return p.n }

// Get returns a workspace, allocating one only when the pool is empty.
func (p *Pool) Get() *Workspace {
	return p.pool.Get().(*Workspace)
}

// Put returns a workspace to the pool. Workspaces reset their scratch at the
// start of each use, so no cleaning is needed here — but the size must
// match, or a later Get would hand out a workspace that panics mid-run.
func (p *Pool) Put(ws *Workspace) {
	if ws == nil {
		return
	}
	if ws.n != p.n {
		panic(fmt.Sprintf("bca: pool sized for %d nodes given workspace for %d", p.n, ws.n))
	}
	p.pool.Put(ws)
}
