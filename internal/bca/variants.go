package bca

import (
	"container/heap"
	"fmt"

	"repro/internal/graph"
)

// This file implements the two BCA propagation strategies the paper
// compares its batch adaptation against (§4.1.2): Berkhin's original
// max-residual selection [7] and the threshold-queue push of Andersen et
// al. [2]. They are used by the ablation benchmarks and by the greedy hub
// selector; the index itself always uses the batch strategy.

// Strategy names a BCA propagation strategy for ablation reporting.
type Strategy int

const (
	// StrategyBatch is the paper's adaptation: all nodes ≥ η per iteration.
	StrategyBatch Strategy = iota
	// StrategyMaxResidual is classic BCA: the single largest-residue node
	// per step.
	StrategyMaxResidual
	// StrategyQueue is threshold push: FIFO over nodes with residue ≥ η.
	StrategyQueue
)

// String returns the strategy name.
func (s Strategy) String() string {
	switch s {
	case StrategyBatch:
		return "batch"
	case StrategyMaxResidual:
		return "max-residual"
	case StrategyQueue:
		return "queue"
	default:
		return fmt.Sprintf("Strategy(%d)", int(s))
	}
}

// RunStrategy runs BCA from u with the chosen propagation strategy until
// ‖r‖₁ ≤ δ (or no progress is possible). All strategies produce valid
// monotone lower bounds; they differ in how much work reaching δ takes.
// The returned Steps counts propagation operations: batch iterations for
// StrategyBatch, single-node pushes otherwise.
func RunStrategy(g *graph.Graph, u graph.NodeID, hubs HubProximities, cfg Config, ws *Workspace, strat Strategy) (st *State, steps int, err error) {
	if err := cfg.Validate(); err != nil {
		return nil, 0, err
	}
	if int(u) < 0 || int(u) >= g.N() {
		return nil, 0, fmt.Errorf("bca: node %d out of range [0,%d)", u, g.N())
	}
	switch strat {
	case StrategyBatch:
		st, err = Run(g, u, hubs, cfg, ws)
		if err != nil {
			return nil, 0, err
		}
		return st, st.T, nil
	case StrategyMaxResidual:
		return runSingle(g, u, hubs, cfg, ws, true)
	case StrategyQueue:
		return runSingle(g, u, hubs, cfg, ws, false)
	default:
		return nil, 0, fmt.Errorf("bca: unknown strategy %v", strat)
	}
}

// residHeap is a max-heap of (node, residue-at-push-time) with lazy
// deletion: stale entries are skipped when popped.
type residHeap struct {
	idx []int32
	val []float64
}

func (h *residHeap) Len() int           { return len(h.idx) }
func (h *residHeap) Less(i, j int) bool { return h.val[i] > h.val[j] }
func (h *residHeap) Swap(i, j int) {
	h.idx[i], h.idx[j] = h.idx[j], h.idx[i]
	h.val[i], h.val[j] = h.val[j], h.val[i]
}
func (h *residHeap) Push(x any) {
	e := x.([2]float64)
	h.idx = append(h.idx, int32(e[0]))
	h.val = append(h.val, e[1])
}
func (h *residHeap) Pop() any {
	n := len(h.idx) - 1
	e := [2]float64{float64(h.idx[n]), h.val[n]}
	h.idx = h.idx[:n]
	h.val = h.val[:n]
	return e
}

// runSingle propagates one node per step, chosen either as the current
// max-residual node (maxSel) or in FIFO threshold order.
func runSingle(g *graph.Graph, u graph.NodeID, hubs HubProximities, cfg Config, ws *Workspace, maxSel bool) (*State, int, error) {
	ws.r.reset()
	ws.w.reset()
	ws.s.reset()
	st := Start(u, hubs)
	if st.RNorm == 0 { // origin is a hub
		return st, 0, nil
	}
	ws.r.load(st.R)
	rnorm := st.RNorm

	var h residHeap
	var queue []int32
	if maxSel {
		heap.Push(&h, [2]float64{float64(u), 1})
	} else {
		queue = append(queue, int32(u))
	}
	inQueue := map[int32]bool{int32(u): true}

	steps := 0
	push := func(i int32, amt float64) {
		ws.r.vals[i] = 0
		rnorm -= amt
		ws.w.add(i, cfg.Alpha*amt)
		spread := (1 - cfg.Alpha) * amt
		node := graph.NodeID(i)
		nbrs := g.OutNeighbors(node)
		wts := g.OutWeightsOf(node)
		emit := func(v graph.NodeID, dv float64) {
			if hubs.IsHub(v) {
				ws.s.add(int32(v), dv)
				return
			}
			ws.r.add(int32(v), dv)
			rnorm += dv
			if ws.r.vals[v] >= cfg.Eta && !inQueue[int32(v)] {
				inQueue[int32(v)] = true
				if maxSel {
					heap.Push(&h, [2]float64{float64(v), ws.r.vals[v]})
				} else {
					queue = append(queue, int32(v))
				}
			}
		}
		if wts == nil {
			share := spread / float64(len(nbrs))
			for _, v := range nbrs {
				emit(v, share)
			}
		} else {
			inv := spread / g.TotalOutWeight(node)
			for k, v := range nbrs {
				emit(v, inv*wts[k])
			}
		}
	}

	for rnorm > cfg.Delta && steps < cfg.MaxIters {
		var i int32 = -1
		if maxSel {
			i = popMax(&h, ws, cfg.Eta)
		} else {
			for len(queue) > 0 {
				cand := queue[0]
				queue = queue[1:]
				delete(inQueue, cand)
				if ws.r.vals[cand] >= cfg.Eta {
					i = cand
					break
				}
			}
		}
		if i < 0 {
			break
		}
		amt := ws.r.vals[i]
		if amt < cfg.Eta {
			continue
		}
		delete(inQueue, i)
		push(i, amt)
		steps++
	}

	st.T = steps
	st.R = ws.r.gather()
	st.W = ws.w.gather()
	st.S = ws.s.gather()
	st.RNorm = st.R.L1()
	return st, steps, nil
}

// popMax pops heap entries until a non-stale node with residue ≥ η is
// found; returns -1 when the heap runs dry.
func popMax(h *residHeap, ws *Workspace, eta float64) int32 {
	for h.Len() > 0 {
		e := heap.Pop(h).([2]float64)
		i := int32(e[0])
		if ws.r.vals[i] >= eta {
			return i
		}
	}
	return -1
}
