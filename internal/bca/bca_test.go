package bca

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/graph"
	"repro/internal/rwr"
	"repro/internal/vecmath"
)

func toyGraph(t testing.TB) *graph.Graph {
	t.Helper()
	g, err := graph.FromEdges(6, [][2]graph.NodeID{
		{0, 1}, {0, 3}, {1, 0}, {1, 2}, {2, 1}, {2, 2},
		{3, 0}, {3, 1}, {3, 4}, {4, 0}, {4, 1}, {4, 4}, {5, 1}, {5, 5},
	}, graph.DanglingSelfLoop)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func randomGraph(rng *rand.Rand, n int, weighted bool) *graph.Graph {
	b := graph.NewBuilder(n)
	m := n + rng.Intn(4*n)
	for i := 0; i < m; i++ {
		u := graph.NodeID(rng.Intn(n))
		v := graph.NodeID(rng.Intn(n))
		if weighted {
			b.AddWeightedEdge(u, v, 1+rng.Float64()*4)
		} else {
			b.AddEdge(u, v)
		}
	}
	g, _, err := b.Build(graph.DanglingSelfLoop)
	if err != nil {
		panic(err)
	}
	return g
}

// exactHubs implements HubProximities with power-method-exact proximity
// vectors — the test double for the hub package.
type exactHubs struct {
	isHub map[graph.NodeID]bool
	cols  map[graph.NodeID][]float64
}

func newExactHubs(t testing.TB, g *graph.Graph, hubs []graph.NodeID) *exactHubs {
	t.Helper()
	e := &exactHubs{isHub: map[graph.NodeID]bool{}, cols: map[graph.NodeID][]float64{}}
	p := rwr.DefaultParams()
	for _, h := range hubs {
		res, err := rwr.ProximityVector(g, h, p)
		if err != nil {
			t.Fatal(err)
		}
		e.isHub[h] = true
		e.cols[h] = res.Vector
	}
	return e
}

func (e *exactHubs) IsHub(v graph.NodeID) bool { return e.isHub[v] }
func (e *exactHubs) NumHubs() int              { return len(e.cols) }
func (e *exactHubs) ScatterHub(dst []float64, h graph.NodeID, scale float64) {
	vecmath.AddScaled(dst, scale, e.cols[h])
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Config{
		{Alpha: 0, Eta: 1e-4, Delta: 0.1, MaxIters: 5},
		{Alpha: 1.5, Eta: 1e-4, Delta: 0.1, MaxIters: 5},
		{Alpha: 0.15, Eta: 0, Delta: 0.1, MaxIters: 5},
		{Alpha: 0.15, Eta: 1e-4, Delta: -1, MaxIters: 5},
		{Alpha: 0.15, Eta: 1e-4, Delta: 0.1, MaxIters: 0},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: want error", i)
		}
	}
}

func TestRunConvergesToPowerMethod(t *testing.T) {
	// With δ→0 and no hubs, BCA's p^t must converge to the exact
	// proximity vector p_u.
	g := toyGraph(t)
	ws := NewWorkspace(g.N())
	cfg := Config{Alpha: 0.15, Eta: 1e-12, Delta: 1e-10, MaxIters: 100000}
	p := rwr.DefaultParams()
	for u := graph.NodeID(0); int(u) < g.N(); u++ {
		st, err := Run(g, u, NoHubs, cfg, ws)
		if err != nil {
			t.Fatal(err)
		}
		pt := MaterializePt(st, NoHubs, ws)
		exact, err := rwr.ProximityVector(g, u, p)
		if err != nil {
			t.Fatal(err)
		}
		if d := vecmath.MaxAbsDiff(pt, exact.Vector); d > 1e-8 {
			t.Errorf("node %d: BCA deviates from PM by %g", u, d)
		}
	}
}

func TestRunWithHubsConvergesToPowerMethod(t *testing.T) {
	g := toyGraph(t)
	hubs := newExactHubs(t, g, []graph.NodeID{0, 1})
	ws := NewWorkspace(g.N())
	cfg := Config{Alpha: 0.15, Eta: 1e-12, Delta: 1e-10, MaxIters: 100000}
	p := rwr.DefaultParams()
	for u := graph.NodeID(2); int(u) < g.N(); u++ {
		st, err := Run(g, u, hubs, cfg, ws)
		if err != nil {
			t.Fatal(err)
		}
		pt := vecmath.Clone(MaterializePt(st, hubs, ws))
		exact, err := rwr.ProximityVector(g, u, p)
		if err != nil {
			t.Fatal(err)
		}
		if d := vecmath.MaxAbsDiff(pt, exact.Vector); d > 1e-7 {
			t.Errorf("node %d: hub BCA deviates from PM by %g", u, d)
		}
	}
}

func TestInkConservationProperty(t *testing.T) {
	// ‖w‖₁+‖s‖₁+‖r‖₁ = 1 after every step, on random graphs, with and
	// without hubs.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomGraph(rng, 3+rng.Intn(25), rng.Intn(2) == 0)
		var hubs HubProximities = NoHubs
		if rng.Intn(2) == 0 {
			hs := []graph.NodeID{graph.NodeID(rng.Intn(g.N()))}
			hubs = newExactHubsQuiet(g, hs)
		}
		ws := NewWorkspace(g.N())
		u := graph.NodeID(rng.Intn(g.N()))
		st := Start(u, hubs)
		cfg := Config{Alpha: 0.15, Eta: 1e-5, Delta: 0, MaxIters: 50}
		for i := 0; i < 30; i++ {
			if st.CheckInvariant(1e-9) != nil {
				return false
			}
			if Step(g, st, hubs, cfg, ws) == 0 {
				break
			}
		}
		return st.CheckInvariant(1e-9) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func newExactHubsQuiet(g *graph.Graph, hubs []graph.NodeID) *exactHubs {
	e := &exactHubs{isHub: map[graph.NodeID]bool{}, cols: map[graph.NodeID][]float64{}}
	p := rwr.DefaultParams()
	for _, h := range hubs {
		res, err := rwr.ProximityVector(g, h, p)
		if err != nil {
			panic(err)
		}
		e.isHub[h] = true
		e.cols[h] = res.Vector
	}
	return e
}

func TestProposition1Monotonicity(t *testing.T) {
	// Every entry of p^t is non-decreasing in t and bounded by the exact
	// proximity (Prop. 1), so p^t is always an entrywise lower bound.
	g := toyGraph(t)
	ws := NewWorkspace(g.N())
	cfg := Config{Alpha: 0.15, Eta: 1e-9, Delta: 0, MaxIters: 500}
	p := rwr.DefaultParams()
	for u := graph.NodeID(0); int(u) < g.N(); u++ {
		exact, err := rwr.ProximityVector(g, u, p)
		if err != nil {
			t.Fatal(err)
		}
		st := Start(u, NoHubs)
		prev := make([]float64, g.N())
		for it := 0; it < 60; it++ {
			if Step(g, st, NoHubs, cfg, ws) == 0 {
				break
			}
			pt := MaterializePt(st, NoHubs, ws)
			for v := range pt {
				if pt[v] < prev[v]-1e-12 {
					t.Fatalf("node %d iter %d: p^t(%d) decreased %g -> %g", u, it, v, prev[v], pt[v])
				}
				if pt[v] > exact.Vector[v]+1e-9 {
					t.Fatalf("node %d iter %d: p^t(%d)=%g exceeds exact %g", u, it, v, pt[v], exact.Vector[v])
				}
			}
			copy(prev, pt)
		}
	}
}

func TestProposition2KthLowerBound(t *testing.T) {
	// p̂^t(k) ≤ pkmax for every k and t, on random graphs.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomGraph(rng, 3+rng.Intn(20), false)
		ws := NewWorkspace(g.N())
		u := graph.NodeID(rng.Intn(g.N()))
		exact, err := rwr.ProximityVector(g, u, rwr.DefaultParams())
		if err != nil {
			return false
		}
		cfg := Config{Alpha: 0.15, Eta: 1e-6, Delta: 0, MaxIters: 100}
		st := Start(u, NoHubs)
		for it := 0; it < 10; it++ {
			if Step(g, st, NoHubs, cfg, ws) == 0 {
				break
			}
			phat := TopK(st, NoHubs, ws, 5)
			for k := 1; k <= 5; k++ {
				if phat[k-1] > vecmath.KthLargest(exact.Vector, k)+1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestStartAtHub(t *testing.T) {
	g := toyGraph(t)
	hubs := newExactHubs(t, g, []graph.NodeID{1})
	st := Start(1, hubs)
	if st.RNorm != 0 || st.S.NNZ() != 1 || st.S.Get(1) != 1 {
		t.Fatalf("hub start wrong: %+v", st)
	}
	// Materializing immediately yields the exact hub proximity vector.
	ws := NewWorkspace(g.N())
	pt := MaterializePt(st, hubs, ws)
	exact, _ := rwr.ProximityVector(g, 1, rwr.DefaultParams())
	if vecmath.MaxAbsDiff(pt, exact.Vector) > 1e-9 {
		t.Error("hub start does not materialize exact vector")
	}
}

func TestStepNoProgressBelowEta(t *testing.T) {
	g := toyGraph(t)
	ws := NewWorkspace(g.N())
	cfg := Config{Alpha: 0.15, Eta: 2, Delta: 0, MaxIters: 10} // η > any residue
	st := Start(0, NoHubs)
	if got := Step(g, st, NoHubs, cfg, ws); got != 0 {
		t.Fatalf("Step propagated %d nodes, want 0", got)
	}
	if st.T != 0 {
		t.Errorf("T advanced to %d on no-op step", st.T)
	}
}

func TestRunStopsAtDelta(t *testing.T) {
	g := toyGraph(t)
	ws := NewWorkspace(g.N())
	cfg := Config{Alpha: 0.15, Eta: 1e-6, Delta: 0.3, MaxIters: 1000}
	st, err := Run(g, 3, NoHubs, cfg, ws)
	if err != nil {
		t.Fatal(err)
	}
	if st.RNorm > 0.3 {
		t.Errorf("RNorm = %g > δ", st.RNorm)
	}
	if st.T == 0 {
		t.Error("no iterations executed")
	}
	if err := st.CheckInvariant(1e-9); err != nil {
		t.Error(err)
	}
}

func TestRunValidation(t *testing.T) {
	g := toyGraph(t)
	ws := NewWorkspace(g.N())
	if _, err := Run(g, 99, NoHubs, DefaultConfig(), ws); err == nil {
		t.Error("want range error")
	}
	if _, err := Run(g, 0, NoHubs, Config{}, ws); err == nil {
		t.Error("want config error")
	}
}

func TestCloneIndependence(t *testing.T) {
	g := toyGraph(t)
	ws := NewWorkspace(g.N())
	st, err := Run(g, 2, NoHubs, DefaultConfig(), ws)
	if err != nil {
		t.Fatal(err)
	}
	c := st.Clone()
	if len(c.R.Val) > 0 {
		c.R.Val[0] = 42
		if st.R.Val[0] == 42 {
			t.Error("Clone aliases R")
		}
	}
	if c.Bytes() != st.Bytes() {
		t.Error("Clone changed footprint")
	}
}

func TestStrategiesAllReachDelta(t *testing.T) {
	g := toyGraph(t)
	cfg := Config{Alpha: 0.15, Eta: 1e-7, Delta: 0.05, MaxIters: 100000}
	exact, _ := rwr.ProximityVector(g, 3, rwr.DefaultParams())
	for _, strat := range []Strategy{StrategyBatch, StrategyMaxResidual, StrategyQueue} {
		ws := NewWorkspace(g.N())
		st, steps, err := RunStrategy(g, 3, NoHubs, cfg, ws, strat)
		if err != nil {
			t.Fatalf("%v: %v", strat, err)
		}
		if st.RNorm > cfg.Delta {
			t.Errorf("%v: RNorm %g > δ", strat, st.RNorm)
		}
		if err := st.CheckInvariant(1e-9); err != nil {
			t.Errorf("%v: %v", strat, err)
		}
		if steps == 0 {
			t.Errorf("%v: zero steps", strat)
		}
		// Lower-bound property holds for every strategy.
		pt := MaterializePt(st, NoHubs, ws)
		for v := range pt {
			if pt[v] > exact.Vector[v]+1e-9 {
				t.Errorf("%v: p^t(%d) exceeds exact", strat, v)
			}
		}
	}
}

func TestBatchNeedsFewerIterationsThanSinglePush(t *testing.T) {
	// The paper's §4.1.2 claim: batch propagation reaches the residue
	// target in far fewer iterations than single-node strategies.
	rng := rand.New(rand.NewSource(5))
	g := randomGraph(rng, 300, false)
	cfg := Config{Alpha: 0.15, Eta: 1e-6, Delta: 0.05, MaxIters: 1000000}
	ws := NewWorkspace(g.N())
	_, batchSteps, err := RunStrategy(g, 0, NoHubs, cfg, ws, StrategyBatch)
	if err != nil {
		t.Fatal(err)
	}
	_, queueSteps, err := RunStrategy(g, 0, NoHubs, cfg, ws, StrategyQueue)
	if err != nil {
		t.Fatal(err)
	}
	if batchSteps >= queueSteps {
		t.Errorf("batch used %d iterations, queue used %d pushes; expected batch ≪ queue", batchSteps, queueSteps)
	}
}

func TestStrategyString(t *testing.T) {
	for _, s := range []Strategy{StrategyBatch, StrategyMaxResidual, StrategyQueue, Strategy(9)} {
		if s.String() == "" {
			t.Errorf("empty name for %d", int(s))
		}
	}
}

func TestRunStrategyHubOrigin(t *testing.T) {
	g := toyGraph(t)
	hubs := newExactHubs(t, g, []graph.NodeID{2})
	ws := NewWorkspace(g.N())
	st, steps, err := RunStrategy(g, 2, hubs, DefaultConfig(), ws, StrategyMaxResidual)
	if err != nil {
		t.Fatal(err)
	}
	if steps != 0 || st.RNorm != 0 {
		t.Errorf("hub origin should be a no-op run: steps=%d rnorm=%g", steps, st.RNorm)
	}
}

func TestWorkspaceSizeMismatchPanics(t *testing.T) {
	g := toyGraph(t)
	ws := NewWorkspace(3)
	st := Start(0, NoHubs)
	defer func() {
		if recover() == nil {
			t.Error("want panic on workspace size mismatch")
		}
	}()
	Step(g, st, NoHubs, DefaultConfig(), ws)
}
