package bca

import (
	"sync"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
)

func TestPoolReusesWorkspaces(t *testing.T) {
	p := NewPool(10)
	if p.N() != 10 {
		t.Fatalf("N = %d, want 10", p.N())
	}
	ws := p.Get()
	if ws.n != 10 {
		t.Fatalf("workspace sized %d, want 10", ws.n)
	}
	p.Put(ws)
	if got := p.Get(); got != ws {
		// sync.Pool may drop entries under GC pressure, so reuse is not
		// guaranteed by spec — but in a quiet unit test a put-then-get
		// returning a fresh allocation would indicate a wiring bug.
		t.Logf("note: pool did not reuse the workspace (allowed, unusual)")
	}
	p.Put(nil) // must be a no-op
}

func TestPoolSizeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("want panic on size mismatch")
		}
	}()
	NewPool(10).Put(NewWorkspace(5))
}

// TestPoolConcurrentBCARuns drives real BCA runs through pooled workspaces
// from many goroutines — the exact usage pattern of the sharded decision
// loop. Run with -race.
func TestPoolConcurrentBCARuns(t *testing.T) {
	g, err := gen.WebGraph(200, 77)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	pool := NewPool(g.N())

	// Reference states computed sequentially.
	refWS := NewWorkspace(g.N())
	want := make([]*State, 8)
	for i := range want {
		st, err := Run(g, graph.NodeID(i*20), NoHubs, cfg, refWS)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = st
	}

	var wg sync.WaitGroup
	errs := make(chan error, 32)
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for round := 0; round < 4; round++ {
				for i := range want {
					ws := pool.Get()
					st, err := Run(g, graph.NodeID(i*20), NoHubs, cfg, ws)
					pool.Put(ws)
					if err != nil {
						errs <- err
						return
					}
					if st.RNorm != want[i].RNorm || st.T != want[i].T ||
						st.R.NNZ() != want[i].R.NNZ() || st.W.NNZ() != want[i].W.NNZ() {
						t.Errorf("origin %d: pooled run diverged from sequential", i*20)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
