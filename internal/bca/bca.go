// Package bca implements the Bookmark Coloring Algorithm family used to
// build the paper's lower-bound index: Berkhin's classic max-residual BCA
// [7], the threshold push of Andersen et al. [2], and — the variant the
// paper actually uses (§4.1.2) — batch propagation, which pushes ink from
// every node holding at least η residue in one iteration (Eq. 8, 9) while
// accumulating hub-bound ink separately (Eq. 6) for batch distribution via
// precomputed hub proximity vectors (Eq. 7).
//
// All variants maintain the ink-conservation invariant
// ‖w‖₁ + ‖s‖₁ + ‖r‖₁ = 1 and produce iterates p^t that are entrywise
// non-decreasing lower bounds of the true proximity vector (Propositions 1
// and 2), which is the property the reverse top-k index relies on.
package bca

import (
	"fmt"
	"sort"

	"repro/internal/graph"
	"repro/internal/vecmath"
)

// HubProximities is what the BCA engine needs to know about hubs. The hub
// package provides the production implementation (a rounded hub proximity
// matrix); NoHubs runs BCA hub-free.
type HubProximities interface {
	// IsHub reports whether v is a hub node.
	IsHub(v graph.NodeID) bool
	// ScatterHub adds scale·p_h into dst, where p_h is the (possibly
	// rounded) precomputed proximity vector of hub h.
	ScatterHub(dst []float64, h graph.NodeID, scale float64)
	// NumHubs returns the number of hubs.
	NumHubs() int
}

// NoHubs is a HubProximities with an empty hub set.
var NoHubs HubProximities = noHubs{}

type noHubs struct{}

func (noHubs) IsHub(graph.NodeID) bool                     { return false }
func (noHubs) ScatterHub([]float64, graph.NodeID, float64) { panic("bca: no hubs") }
func (noHubs) NumHubs() int                                { return 0 }

// Config holds the BCA parameters of Algorithm 1.
type Config struct {
	// Alpha is the restart probability (ink retention fraction).
	Alpha float64
	// Eta is the propagation threshold η: only nodes holding at least η
	// residue ink propagate in a batch iteration (paper default 1e-4).
	Eta float64
	// Delta is the residue threshold δ: iteration stops once ‖r‖₁ ≤ δ
	// (paper default 0.1 for indexing).
	Delta float64
	// MaxIters caps the number of iterations as a safety net.
	MaxIters int
}

// DefaultConfig returns the indexing parameters of §5.2: α=0.15, η=1e-4,
// δ=0.1.
func DefaultConfig() Config {
	return Config{Alpha: 0.15, Eta: 1e-4, Delta: 0.1, MaxIters: 10000}
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	if c.Alpha <= 0 || c.Alpha >= 1 {
		return fmt.Errorf("bca: alpha must be in (0,1), got %g", c.Alpha)
	}
	if c.Eta <= 0 {
		return fmt.Errorf("bca: eta must be positive, got %g", c.Eta)
	}
	if c.Delta < 0 {
		return fmt.Errorf("bca: delta must be non-negative, got %g", c.Delta)
	}
	if c.MaxIters <= 0 {
		return fmt.Errorf("bca: max iterations must be positive, got %d", c.MaxIters)
	}
	return nil
}

// State is the resumable ink distribution of a partially executed BCA run
// from one origin node: exactly the (r^t_u, w^t_u, s^t_u) triple the index
// stores per node (matrices R, W, S of §4.1.2), in sparse form.
type State struct {
	// Origin is the node the unit of ink was injected at.
	Origin graph.NodeID
	// T is the number of batch iterations executed so far.
	T int
	// RNorm is ‖R‖₁, the total undistributed residue ink.
	RNorm float64
	// R holds residue ink awaiting propagation (non-hub nodes only).
	R vecmath.Sparse
	// W holds ink retained at non-hub nodes (never redistributed).
	W vecmath.Sparse
	// S holds ink accumulated at hub nodes, to be distributed in batch
	// through the hub proximity vectors at evaluation time (Eq. 7).
	S vecmath.Sparse
}

// Clone returns a deep copy of the state.
func (st *State) Clone() *State {
	return &State{Origin: st.Origin, T: st.T, RNorm: st.RNorm,
		R: st.R.Clone(), W: st.W.Clone(), S: st.S.Clone()}
}

// Bytes returns the approximate in-memory footprint of the sparse payload.
func (st *State) Bytes() int64 {
	return st.R.Bytes() + st.W.Bytes() + st.S.Bytes() + 16
}

// CheckInvariant verifies ink conservation: ‖w‖₁ + ‖s‖₁ + ‖r‖₁ must equal
// the injected unit of ink (within tol), and RNorm must match R.
func (st *State) CheckInvariant(tol float64) error {
	total := st.R.L1() + st.W.L1() + st.S.L1()
	if d := total - 1; d > tol || d < -tol {
		return fmt.Errorf("bca: ink not conserved: w+s+r = %g", total)
	}
	if d := st.R.L1() - st.RNorm; d > tol || d < -tol {
		return fmt.Errorf("bca: cached RNorm %g != ‖R‖₁ %g", st.RNorm, st.R.L1())
	}
	return nil
}

// Workspace holds dense scratch arrays reused across BCA runs so that
// building the index for millions of nodes performs no per-node
// allocations proportional to n. A Workspace serves one goroutine.
type Workspace struct {
	n int
	r scratch
	w scratch
	s scratch
	// pt is dense scratch for materializing p^t via Eq. 7.
	pt []float64
	// batch buffers the node/amount pairs selected in one iteration.
	batchIdx []int32
	batchAmt []float64
}

// NewWorkspace creates a workspace for graphs with n nodes.
func NewWorkspace(n int) *Workspace {
	return &Workspace{
		n:  n,
		r:  newScratch(n),
		w:  newScratch(n),
		s:  newScratch(n),
		pt: make([]float64, n),
	}
}

// scratch is a dense vector with a touched-entry list so it can be reset in
// O(touched) rather than O(n).
type scratch struct {
	vals    []float64
	mark    []bool
	touched []int32
}

func newScratch(n int) scratch {
	return scratch{vals: make([]float64, n), mark: make([]bool, n)}
}

func (s *scratch) add(i int32, v float64) {
	if !s.mark[i] {
		s.mark[i] = true
		s.touched = append(s.touched, i)
	}
	s.vals[i] += v
}

func (s *scratch) reset() {
	for _, i := range s.touched {
		s.vals[i] = 0
		s.mark[i] = false
	}
	s.touched = s.touched[:0]
}

// load scatters a sparse vector into the scratch (which must be clean).
func (s *scratch) load(sp vecmath.Sparse) {
	for i, idx := range sp.Idx {
		s.add(idx, sp.Val[i])
	}
}

// gather extracts the positive entries into a sorted Sparse.
func (s *scratch) gather() vecmath.Sparse {
	idxs := make([]int32, len(s.touched))
	copy(idxs, s.touched)
	sort.Slice(idxs, func(a, b int) bool { return idxs[a] < idxs[b] })
	return vecmath.GatherSparseIndices(s.vals, idxs, 0)
}

func (s *scratch) l1() float64 {
	var sum float64
	for _, i := range s.touched {
		sum += s.vals[i]
	}
	return sum
}

// Start initializes a fresh BCA run from origin u: a unit of ink is
// injected as residue at u (r = e_u, w = s = 0, t = 0). If u is a hub the
// ink goes directly to s, since hubs never propagate.
func Start(u graph.NodeID, hubs HubProximities) *State {
	st := &State{Origin: u, T: 0}
	if hubs.IsHub(u) {
		st.S = vecmath.Sparse{Idx: []int32{int32(u)}, Val: []float64{1}}
		st.RNorm = 0
	} else {
		st.R = vecmath.Sparse{Idx: []int32{int32(u)}, Val: []float64{1}}
		st.RNorm = 1
	}
	return st
}

// Step executes one batch iteration of the paper's adapted BCA (Eq. 6, 8,
// 9) on the state, in place. It returns the number of nodes that
// propagated; zero means no node holds ≥ η residue and the run cannot make
// further progress at this η.
//
// Unlike the rwr matvec kernels, Step and Run carry no devirtualized
// per-view fast paths: a query's cost is dominated by the PMPN matvec and
// the dense scratch bookkeeping here, and the full-query benchmark
// (BenchmarkIntraQueryWorkers) shows no measurable difference between the
// pre-View concrete loops and the generic ones.
//
// Ink pushed toward a hub node is credited to s immediately (it would
// otherwise sit in r only to be moved to s by Eq. 6 on the next iteration;
// folding the move in keeps ‖r‖₁ meaningful as "ink still needing work").
func Step[G graph.View](g G, st *State, hubs HubProximities, cfg Config, ws *Workspace) int {
	if ws.n != g.N() {
		panic(fmt.Sprintf("bca: workspace sized for %d nodes, graph has %d", ws.n, g.N()))
	}
	ws.r.reset()
	ws.r.load(st.R)
	ws.batchIdx = ws.batchIdx[:0]
	ws.batchAmt = ws.batchAmt[:0]
	for _, i := range ws.r.touched {
		if v := ws.r.vals[i]; v >= cfg.Eta {
			ws.batchIdx = append(ws.batchIdx, i)
			ws.batchAmt = append(ws.batchAmt, v)
		}
	}
	if len(ws.batchIdx) == 0 {
		return 0
	}
	ws.w.reset()
	ws.s.reset()
	ws.w.load(st.W)
	ws.s.load(st.S)

	// Zero the selected residues first (Eq. 9 second term), then push
	// (first term): pushes landing on batch members belong to the next
	// iteration's residue.
	for _, i := range ws.batchIdx {
		ws.r.vals[i] = 0
	}
	alpha := cfg.Alpha
	for b, i := range ws.batchIdx {
		amt := ws.batchAmt[b]
		u := graph.NodeID(i)
		ws.w.add(i, alpha*amt) // Eq. 8: retain α portion
		spread := (1 - alpha) * amt
		nbrs := g.OutNeighbors(u)
		wts := g.OutWeightsOf(u)
		if wts == nil {
			share := spread / float64(len(nbrs))
			for _, v := range nbrs {
				if hubs.IsHub(v) {
					ws.s.add(int32(v), share) // Eq. 6 folded in
				} else {
					ws.r.add(int32(v), share)
				}
			}
		} else {
			inv := spread / g.TotalOutWeight(u)
			for k, v := range nbrs {
				dv := inv * wts[k]
				if hubs.IsHub(v) {
					ws.s.add(int32(v), dv)
				} else {
					ws.r.add(int32(v), dv)
				}
			}
		}
	}

	st.T++
	st.R = ws.r.gather()
	st.W = ws.w.gather()
	st.S = ws.s.gather()
	st.RNorm = st.R.L1()
	return len(ws.batchIdx)
}

// Run executes Algorithm 1's inner loop for one origin node: batch
// iterations until ‖r‖₁ ≤ δ, no node reaches η, or MaxIters is hit. The
// returned state is resumable (queries refine it further with Step).
//
// Unlike repeated Step calls — which serialize the state to sparse form
// after every iteration so that queries can persist it — Run keeps the ink
// dense in the workspace across all iterations and gathers once at the
// end. This is what makes batch propagation pay off (§4.1.2): the
// per-iteration cost is one scan of the touched region, with no sorting
// or allocation.
func Run[G graph.View](g G, u graph.NodeID, hubs HubProximities, cfg Config, ws *Workspace) (*State, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if int(u) < 0 || int(u) >= g.N() {
		return nil, fmt.Errorf("bca: node %d out of range [0,%d)", u, g.N())
	}
	if ws.n != g.N() {
		panic(fmt.Sprintf("bca: workspace sized for %d nodes, graph has %d", ws.n, g.N()))
	}
	st := Start(u, hubs)
	if st.RNorm == 0 { // origin is a hub
		return st, nil
	}
	ws.r.reset()
	ws.w.reset()
	ws.s.reset()
	ws.r.load(st.R)
	rnorm := st.RNorm
	alpha := cfg.Alpha

	for rnorm > cfg.Delta && st.T < cfg.MaxIters {
		// Select the batch L^t = {v : r(v) ≥ η} by scanning the touched
		// region, snapshotting amounts so pushes into batch members
		// count toward the next iteration (Eq. 9 semantics).
		ws.batchIdx = ws.batchIdx[:0]
		ws.batchAmt = ws.batchAmt[:0]
		for _, i := range ws.r.touched {
			if v := ws.r.vals[i]; v >= cfg.Eta {
				ws.batchIdx = append(ws.batchIdx, i)
				ws.batchAmt = append(ws.batchAmt, v)
			}
		}
		if len(ws.batchIdx) == 0 {
			break
		}
		for _, i := range ws.batchIdx {
			ws.r.vals[i] = 0
		}
		for b, i := range ws.batchIdx {
			amt := ws.batchAmt[b]
			rnorm -= amt
			node := graph.NodeID(i)
			ws.w.add(i, alpha*amt)
			spread := (1 - alpha) * amt
			nbrs := g.OutNeighbors(node)
			wts := g.OutWeightsOf(node)
			if wts == nil {
				share := spread / float64(len(nbrs))
				for _, v := range nbrs {
					if hubs.IsHub(v) {
						ws.s.add(int32(v), share)
					} else {
						ws.r.add(int32(v), share)
						rnorm += share
					}
				}
			} else {
				inv := spread / g.TotalOutWeight(node)
				for k, v := range nbrs {
					dv := inv * wts[k]
					if hubs.IsHub(v) {
						ws.s.add(int32(v), dv)
					} else {
						ws.r.add(int32(v), dv)
						rnorm += dv
					}
				}
			}
		}
		st.T++
	}

	st.R = ws.r.gather()
	st.W = ws.w.gather()
	st.S = ws.s.gather()
	st.RNorm = st.R.L1()
	return st, nil
}

// MaterializePt computes the dense lower-bound approximation p^t of Eq. 7:
// p^t = w + P_H·s, i.e. retained non-hub ink plus hub-accumulated ink
// distributed through the (rounded) hub proximity vectors. The returned
// slice aliases workspace scratch and is valid until the next workspace
// use.
func MaterializePt(st *State, hubs HubProximities, ws *Workspace) []float64 {
	vecmath.Zero(ws.pt)
	st.W.CopyInto(ws.pt)
	for i, h := range st.S.Idx {
		hubs.ScatterHub(ws.pt, graph.NodeID(h), st.S.Val[i])
	}
	return ws.pt
}

// TopK materializes p^t and returns its K largest values descending — one
// column p̂^t_u(1:K) of the index's lower-bound matrix.
func TopK(st *State, hubs HubProximities, ws *Workspace, k int) []float64 {
	return vecmath.TopKValues(MaterializePt(st, hubs, ws), k)
}
