// Package atomics is the atomicfield fixture: the mixed atomic/plain
// access pattern the analyzer must flag, next to the disciplined shapes it
// must leave alone.
package atomics

import "sync/atomic"

type Stats struct {
	hits int64
	// misses is only ever accessed plainly — never atomic, never flagged.
	misses int64
}

func (s *Stats) Hit() {
	atomic.AddInt64(&s.hits, 1)
}

func (s *Stats) Hits() int64 {
	return atomic.LoadInt64(&s.hits)
}

func (s *Stats) Reset() {
	atomic.StoreInt64(&s.hits, 0)
}

func (s *Stats) Bad() int64 {
	return s.hits // want `mixed atomic/plain access`
}

func (s *Stats) BadWrite() {
	s.hits = 0 // want `mixed atomic/plain access`
}

func (s *Stats) Miss() {
	s.misses++
}

func (s *Stats) Misses() int64 {
	return s.misses
}

// NewStats touches hits plainly, legally: the value is fresh from a
// composite literal and unshared.
func NewStats(seed int64) *Stats {
	s := &Stats{}
	s.hits = seed
	return s
}

// Typed uses the typed wrappers, which make mixed access unrepresentable —
// nothing here is flagged.
type Typed struct {
	n atomic.Int64
}

func (t *Typed) Inc() { t.n.Add(1) }

func (t *Typed) Get() int64 { return t.n.Load() }

func (s *Stats) suppressed() int64 {
	//rtklint:ignore atomicfield fixture: under the owner's lock, writers quiesced
	return s.hits
}
