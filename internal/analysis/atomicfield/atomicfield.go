// Package atomicfield enforces the all-or-nothing rule of sync/atomic: a
// struct field accessed through atomic operations anywhere must be
// accessed through them everywhere. A single plain read racing an
// atomic.AddInt64 is undefined behavior the race detector only catches if
// a test happens to interleave it; this check catches it at lint time.
//
// Pass one collects every field whose address is taken as the first
// argument of a sync/atomic function (AddInt64(&s.n, 1), LoadUint64(&s.w),
// ...). Pass two flags every other appearance of those fields — plain
// reads, writes, or address-taking for non-atomic purposes. Fields of a
// value freshly built from a composite literal in the same function are
// exempt (no other goroutine can observe them yet), which keeps
// constructors idiomatic.
//
// The typed wrappers (atomic.Int64 and friends) make this mistake
// unrepresentable and are the preferred fix; this analyzer exists for the
// old-style fields the wrappers have not reached.
package atomicfield

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "atomicfield",
	Doc:  "a field accessed via sync/atomic must never be accessed plainly elsewhere",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	atomicFields, atomicSites := collectAtomicFields(pass)
	if len(atomicFields) == 0 {
		return nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fresh := freshObjects(pass, fd.Body)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				sel, ok := n.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				s := pass.Info.Selections[sel]
				if s == nil {
					return true
				}
				v, ok := s.Obj().(*types.Var)
				if !ok || !atomicFields[v] || atomicSites[sel] {
					return true
				}
				if id, ok := ast.Unparen(sel.X).(*ast.Ident); ok {
					if obj := pass.Info.Uses[id]; obj != nil && fresh[obj] {
						return true
					}
				}
				pass.Reportf(sel.Sel.Pos(), "field %s is accessed with sync/atomic elsewhere but plainly here — mixed atomic/plain access is a data race; use the atomic API (or an atomic.%s-style typed field) for every access",
					v.Name(), suggestWrapper(v.Type()))
				return true
			})
		}
	}
	return nil
}

// collectAtomicFields finds fields used as &x.f in the first argument of a
// sync/atomic call, returning both the field set and the exact selector
// nodes appearing in atomic position (so they are not self-flagged).
func collectAtomicFields(pass *analysis.Pass) (map[*types.Var]bool, map[*ast.SelectorExpr]bool) {
	fields := map[*types.Var]bool{}
	sites := map[*ast.SelectorExpr]bool{}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) == 0 {
				return true
			}
			fn := analysis.CalleeFunc(pass.Info, call)
			if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
				return true
			}
			if fn.Type().(*types.Signature).Recv() != nil {
				return true // typed-wrapper methods are safe by construction
			}
			un, ok := ast.Unparen(call.Args[0]).(*ast.UnaryExpr)
			if !ok || un.Op != token.AND {
				return true
			}
			sel, ok := ast.Unparen(un.X).(*ast.SelectorExpr)
			if !ok {
				return true
			}
			s := pass.Info.Selections[sel]
			if s == nil {
				return true
			}
			if v, ok := s.Obj().(*types.Var); ok && v.IsField() {
				fields[v] = true
				sites[sel] = true
			}
			return true
		})
	}
	return fields, sites
}

// freshObjects returns local objects bound to composite literals — values
// not yet shared with other goroutines, where plain access is fine.
func freshObjects(pass *analysis.Pass, body *ast.BlockStmt) map[types.Object]bool {
	out := map[types.Object]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		st, ok := n.(*ast.AssignStmt)
		if !ok || st.Tok != token.DEFINE || len(st.Lhs) != len(st.Rhs) {
			return true
		}
		for i := range st.Lhs {
			id, ok := st.Lhs[i].(*ast.Ident)
			if !ok {
				continue
			}
			r := ast.Unparen(st.Rhs[i])
			if un, ok := r.(*ast.UnaryExpr); ok && un.Op == token.AND {
				r = ast.Unparen(un.X)
			}
			if _, ok := r.(*ast.CompositeLit); !ok {
				continue
			}
			if obj := pass.Info.Defs[id]; obj != nil {
				out[obj] = true
			}
		}
		return true
	})
	return out
}

// suggestWrapper names the typed atomic wrapper matching the field's type,
// for the diagnostic's fix suggestion.
func suggestWrapper(t types.Type) string {
	b, ok := t.Underlying().(*types.Basic)
	if !ok {
		return "Value"
	}
	switch b.Kind() {
	case types.Int32:
		return "Int32"
	case types.Int64, types.Int:
		return "Int64"
	case types.Uint32:
		return "Uint32"
	case types.Uint64, types.Uint, types.Uintptr:
		return "Uint64"
	case types.Bool:
		return "Bool"
	}
	if strings.Contains(b.String(), "unsafe") {
		return "Pointer"
	}
	return "Value"
}
