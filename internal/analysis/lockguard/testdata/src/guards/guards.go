// Package guards is the lockguard fixture: annotated fields with every
// locking idiom the analyzer must accept — direct acquisition, stripe
// aliasing, locker-method helpers, fresh construction — and the bare
// accesses it must flag.
package guards

import "sync"

type Counter struct {
	mu sync.Mutex
	n  int // guarded by mu
}

func (c *Counter) Inc() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n++
}

func (c *Counter) Bad() int {
	return c.n // want `n is guarded by mu`
}

// NewCounter touches the field without the lock, legally: the value is
// fresh from a composite literal and cannot be shared yet.
func NewCounter() *Counter {
	c := &Counter{}
	c.n = 1
	return c
}

// peek documents a caller-holds-the-lock contract the analyzer cannot see.
func (c *Counter) peek() int {
	//rtklint:ignore lockguard fixture: caller holds c.mu
	return c.n
}

// Striped mirrors lbindex.Index: an array of stripe locks guarding slices.
type Striped struct {
	stripes [4]sync.RWMutex
	vals    []int // guarded by stripes
}

// Get uses the stripe-alias idiom: take the address of one stripe, lock
// through the alias.
func (s *Striped) Get(i int) int {
	m := &s.stripes[i%4]
	m.RLock()
	defer m.RUnlock()
	return s.vals[i]
}

// lockAll is a locker method: it acquires the guard on its receiver, so a
// call to it counts as evidence in the caller.
func (s *Striped) lockAll() {
	for i := range s.stripes {
		s.stripes[i].Lock()
	}
}

func (s *Striped) unlockAll() {
	for i := range s.stripes {
		s.stripes[i].Unlock()
	}
}

func (s *Striped) Sum() int {
	s.lockAll()
	defer s.unlockAll()
	t := 0
	for _, v := range s.vals {
		t += v
	}
	return t
}

// Grow locks directly on an indexed stripe; function literals inherit the
// enclosing function's evidence.
func (s *Striped) Grow(i, v int) {
	s.stripes[i%4].Lock()
	defer s.stripes[i%4].Unlock()
	set := func() { s.vals[i] = v }
	set()
}

func (s *Striped) BadLen() int {
	return len(s.vals) // want `vals is guarded by stripes`
}

// BadAnnotations exercise the malformed-annotation findings. The wants are
// block comments because the line comment itself is the annotation under
// test.
type BadAnnotations struct {
	mu    sync.Mutex
	a     int /* want `not a field of this struct` */ // guarded by missing
	b     int /* want `not a sync.Mutex/RWMutex` */ // guarded by a
	clean int // guarded by mu
}

func (x *BadAnnotations) Use() int {
	x.mu.Lock()
	defer x.mu.Unlock()
	return x.a + x.b + x.clean
}
