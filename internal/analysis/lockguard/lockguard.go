// Package lockguard enforces `// guarded by <mu>` field annotations: a
// struct field annotated as guarded may only be accessed in functions
// that demonstrably hold the named mutex. The check is intra-procedural
// and deliberately conservative — it asks "does this function acquire the
// guard anywhere?" rather than proving the lock is held at the exact
// access — which is cheap, has no false negatives for the straight-line
// locking this codebase uses, and turns silent lock-discipline erosion
// into a build failure.
//
// Annotation syntax: a field whose doc or line comment contains
// "guarded by <name>" (case-insensitive "guarded"), where <name> is a
// sibling field of type sync.Mutex, sync.RWMutex, a pointer to one, or an
// array/slice of them (lock striping). Example:
//
//	mu    sync.Mutex
//	queue []*editBatch // guarded by mu
//
// An access is accepted when any of these hold in the enclosing function
// (function literals inherit their enclosing function's evidence):
//
//   - the function locks the same base's guard directly
//     (s.mu.Lock / s.stripes[i].RLock), through a local alias
//     (l := &s.stripes[i]; l.Lock()), or by calling a locker method on the
//     base — a method of the struct that itself acquires the guard on its
//     receiver (lockAll-style helpers, computed as a fixpoint);
//   - the base object was freshly constructed from a composite literal in
//     this function and so cannot yet be shared.
//
// Everything else is a finding. Contracts the analyzer cannot see (a
// method documented "caller must hold mu") are suppressed at the access
// with //rtklint:ignore lockguard <reason>, which keeps every exception
// written down next to the code it excuses.
package lockguard

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"

	"repro/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "lockguard",
	Doc:  "fields annotated `guarded by <mu>` may only be accessed with the named mutex held",
	Run:  run,
}

var guardRe = regexp.MustCompile(`(?i)guarded by ([A-Za-z_][A-Za-z0-9_]*)`)

// guardInfo ties one guarded field to its guard field within a struct.
type guardInfo struct {
	field *types.Var // the guarded field
	guard *types.Var // the mutex (or mutex-array) field protecting it
}

func run(pass *analysis.Pass) error {
	guards := collectGuards(pass)
	if len(guards) == 0 {
		return nil
	}
	lockers := collectLockers(pass, guards)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(pass, fd, guards, lockers)
		}
	}
	return nil
}

// collectGuards parses the annotations in every struct declaration,
// reporting malformed ones, and returns guarded-field → guard mappings.
func collectGuards(pass *analysis.Pass) map[*types.Var]guardInfo {
	out := map[*types.Var]guardInfo{}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			// First index the struct's fields by name so guard names
			// resolve to their *types.Var.
			byName := map[string]*types.Var{}
			for _, field := range st.Fields.List {
				for _, name := range field.Names {
					if v, ok := pass.Info.Defs[name].(*types.Var); ok {
						byName[name.Name] = v
					}
				}
			}
			for _, field := range st.Fields.List {
				guardName := annotation(field)
				if guardName == "" {
					continue
				}
				guard, ok := byName[guardName]
				if !ok {
					pass.Reportf(field.Pos(), "guarded-by annotation names %q, which is not a field of this struct", guardName)
					continue
				}
				if !isMutexType(guard.Type()) {
					pass.Reportf(field.Pos(), "guarded-by annotation names %q, which is not a sync.Mutex/RWMutex (or array/slice of them)", guardName)
					continue
				}
				for _, name := range field.Names {
					if v, ok := pass.Info.Defs[name].(*types.Var); ok {
						out[v] = guardInfo{field: v, guard: guard}
					}
				}
			}
			return true
		})
	}
	return out
}

// annotation extracts the guard name from a field's comments, or "".
func annotation(field *ast.Field) string {
	for _, cg := range []*ast.CommentGroup{field.Doc, field.Comment} {
		if cg == nil {
			continue
		}
		if m := guardRe.FindStringSubmatch(cg.Text()); m != nil {
			return m[1]
		}
	}
	return ""
}

// isMutexType accepts sync.Mutex, sync.RWMutex, pointers to them, and
// arrays/slices of them (lock striping).
func isMutexType(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Array:
		return isMutexType(u.Elem())
	case *types.Slice:
		return isMutexType(u.Elem())
	case *types.Pointer:
		return isMutexType(u.Elem())
	}
	return analysis.IsNamedType(t, "sync", "Mutex") || analysis.IsNamedType(t, "sync", "RWMutex")
}

// collectLockers computes, as a fixpoint, which methods acquire which
// guards on their own receiver — directly or by calling another locker
// method on the receiver. These are the lockAll-style helpers.
func collectLockers(pass *analysis.Pass, guards map[*types.Var]guardInfo) map[*types.Func]map[*types.Var]bool {
	guardVars := map[*types.Var]bool{}
	for _, gi := range guards {
		guardVars[gi.guard] = true
	}
	lockers := map[*types.Func]map[*types.Var]bool{}
	type method struct {
		fn   *types.Func
		decl *ast.FuncDecl
		recv string
	}
	var methods []method
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || fd.Recv == nil || len(fd.Recv.List) == 0 || len(fd.Recv.List[0].Names) == 0 {
				continue
			}
			fn, _ := pass.Info.Defs[fd.Name].(*types.Func)
			if fn == nil {
				continue
			}
			methods = append(methods, method{fn: fn, decl: fd, recv: fd.Recv.List[0].Names[0].Name})
		}
	}
	for changed := true; changed; {
		changed = false
		for _, m := range methods {
			acq := acquisitions(pass, m.decl.Body, guardVars, lockers)
			for key := range acq {
				if key.base != m.recv {
					continue
				}
				if lockers[m.fn] == nil {
					lockers[m.fn] = map[*types.Var]bool{}
				}
				if !lockers[m.fn][key.guard] {
					lockers[m.fn][key.guard] = true
					changed = true
				}
			}
		}
	}
	return lockers
}

// acqKey is one piece of locking evidence: the rendered base expression
// and the guard it acquires.
type acqKey struct {
	base  string
	guard *types.Var
}

// acquisitions scans a function body (function literals included — they
// inherit the enclosing evidence by construction of the flat walk) for
// guard acquisitions.
func acquisitions(pass *analysis.Pass, body *ast.BlockStmt, guardVars map[*types.Var]bool, lockers map[*types.Func]map[*types.Var]bool) map[acqKey]bool {
	out := map[acqKey]bool{}
	// aliases maps a local variable object to the (base, guard) whose
	// address it holds: s := &idx.stripes[i].
	aliases := map[types.Object]acqKey{}
	ast.Inspect(body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.AssignStmt:
			if st.Tok != token.DEFINE || len(st.Lhs) != 1 || len(st.Rhs) != 1 {
				return true
			}
			id, ok := st.Lhs[0].(*ast.Ident)
			if !ok {
				return true
			}
			un, ok := ast.Unparen(st.Rhs[0]).(*ast.UnaryExpr)
			if !ok || un.Op != token.AND {
				return true
			}
			if base, guard, ok := guardSelector(pass, un.X, guardVars); ok {
				if obj := pass.Info.Defs[id]; obj != nil {
					aliases[obj] = acqKey{base: base, guard: guard}
				}
			}
		case *ast.CallExpr:
			sel, ok := ast.Unparen(st.Fun).(*ast.SelectorExpr)
			if !ok {
				return true
			}
			switch sel.Sel.Name {
			case "Lock", "RLock":
				recv := ast.Unparen(sel.X)
				if base, guard, ok := guardSelector(pass, recv, guardVars); ok {
					out[acqKey{base: base, guard: guard}] = true
					return true
				}
				if id, ok := recv.(*ast.Ident); ok {
					if key, ok := aliases[pass.Info.Uses[id]]; ok {
						out[key] = true
					}
				}
			default:
				// A call to a locker method counts as acquiring its
				// guards on the call's base.
				fn, _ := pass.Info.Uses[sel.Sel].(*types.Func)
				if held := lockers[fn]; len(held) > 0 {
					base := types.ExprString(ast.Unparen(sel.X))
					for g := range held {
						out[acqKey{base: base, guard: g}] = true
					}
				}
			}
		}
		return true
	})
	return out
}

// guardSelector decomposes base.guard or base.guard[i] (with arbitrary
// parenthesization) into its rendered base and the guard field var.
func guardSelector(pass *analysis.Pass, e ast.Expr, guardVars map[*types.Var]bool) (string, *types.Var, bool) {
	e = ast.Unparen(e)
	if ix, ok := e.(*ast.IndexExpr); ok {
		e = ast.Unparen(ix.X)
	}
	sel, ok := e.(*ast.SelectorExpr)
	if !ok {
		return "", nil, false
	}
	s := pass.Info.Selections[sel]
	if s == nil {
		return "", nil, false
	}
	v, ok := s.Obj().(*types.Var)
	if !ok || !guardVars[v] {
		return "", nil, false
	}
	return types.ExprString(ast.Unparen(sel.X)), v, true
}

// checkFunc verifies every guarded-field access in one function.
func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl, guards map[*types.Var]guardInfo, lockers map[*types.Func]map[*types.Var]bool) {
	guardVars := map[*types.Var]bool{}
	for _, gi := range guards {
		guardVars[gi.guard] = true
	}
	acq := acquisitions(pass, fd.Body, guardVars, lockers)
	fresh := freshObjects(pass, fd.Body)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		s := pass.Info.Selections[sel]
		if s == nil {
			return true
		}
		v, ok := s.Obj().(*types.Var)
		if !ok {
			return true
		}
		gi, guarded := guards[v]
		if !guarded {
			return true
		}
		base := ast.Unparen(sel.X)
		if id, ok := base.(*ast.Ident); ok {
			if obj := pass.Info.Uses[id]; obj != nil && fresh[obj] {
				return true
			}
		}
		if acq[acqKey{base: types.ExprString(base), guard: gi.guard}] {
			return true
		}
		pass.Reportf(sel.Sel.Pos(), "%s is guarded by %s, but %s neither locks %s.%s nor constructed %s here; hold the lock or suppress with an //rtklint:ignore lockguard <reason> stating the contract",
			v.Name(), gi.guard.Name(), funcLabel(fd), types.ExprString(base), gi.guard.Name(), types.ExprString(base))
		return true
	})
}

// freshObjects returns local objects bound to composite literals in this
// function — values that cannot be shared with another goroutine yet.
func freshObjects(pass *analysis.Pass, body *ast.BlockStmt) map[types.Object]bool {
	out := map[types.Object]bool{}
	bind := func(lhs ast.Expr, rhs ast.Expr) {
		id, ok := lhs.(*ast.Ident)
		if !ok {
			return
		}
		r := ast.Unparen(rhs)
		if un, ok := r.(*ast.UnaryExpr); ok && un.Op == token.AND {
			r = ast.Unparen(un.X)
		}
		if _, ok := r.(*ast.CompositeLit); !ok {
			return
		}
		if obj := pass.Info.Defs[id]; obj != nil {
			out[obj] = true
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.AssignStmt:
			if st.Tok != token.DEFINE || len(st.Lhs) != len(st.Rhs) {
				return true
			}
			for i := range st.Lhs {
				bind(st.Lhs[i], st.Rhs[i])
			}
		case *ast.ValueSpec:
			if len(st.Names) != len(st.Values) {
				return true
			}
			for i := range st.Names {
				bind(st.Names[i], st.Values[i])
			}
		}
		return true
	})
	return out
}

func funcLabel(fd *ast.FuncDecl) string {
	if fd.Recv != nil {
		return "method " + fd.Name.Name
	}
	return "function " + fd.Name.Name
}
