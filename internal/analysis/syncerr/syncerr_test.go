package syncerr_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/syncerr"
)

func TestSyncerr(t *testing.T) {
	analysistest.Run(t, "testdata", syncerr.Analyzer, "durability")
}
