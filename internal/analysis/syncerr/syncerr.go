// Package syncerr checks the durability packages' error discipline: in
// code whose acknowledgements promise persistence (the write-ahead journal
// and the serving layer's checkpoint path), an ignored error from Sync,
// Close, Write or os.Rename is a silent hole in the fsync-before-202
// contract — the write "succeeded" in the program and vanished on disk.
//
// The analyzer flags any statement that discards the error result of:
//
//   - (*os.File).Sync / Close / Write / WriteString / Truncate
//   - os.Rename
//   - an error-returning Sync / Close / Append / TruncateBelow method on
//     any non-standard-library type (the journal and its kin)
//
// whether called as a bare expression statement, a go statement, or a
// defer. Explicitly discarding with `_ = f.Close()` is allowed — it is
// visible in review and greppable — as is a //rtklint:ignore suppression
// with a reason.
package syncerr

import (
	"go/ast"
	"go/types"

	"repro/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "syncerr",
	Doc:  "durability packages must check every Sync/Close/Write/Rename error",
	Run:  run,
}

// fileMethods are the *os.File methods whose errors must be checked.
var fileMethods = map[string]bool{
	"Sync":        true,
	"Close":       true,
	"Write":       true,
	"WriteString": true,
	"Truncate":    true,
}

// durableMethods are checked on ANY non-stdlib receiver: these names are
// the durability surface of the journal (wal.Log) and any future kin.
var durableMethods = map[string]bool{
	"Sync":          true,
	"Close":         true,
	"Append":        true,
	"TruncateBelow": true,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var call *ast.CallExpr
			switch st := n.(type) {
			case *ast.ExprStmt:
				call, _ = st.X.(*ast.CallExpr)
			case *ast.GoStmt:
				call = st.Call
			case *ast.DeferStmt:
				call = st.Call
			}
			if call == nil {
				return true
			}
			if why := discardedDurableError(pass, call); why != "" {
				pass.Reportf(call.Pos(), "%s", why)
			}
			return true
		})
	}
	return nil
}

// discardedDurableError describes the violation when the call's error
// result is durability-relevant, or returns "".
func discardedDurableError(pass *analysis.Pass, call *ast.CallExpr) string {
	fn := analysis.CalleeFunc(pass.Info, call)
	if fn == nil || !returnsError(fn) {
		return ""
	}
	sig := fn.Type().(*types.Signature)
	if sig.Recv() == nil {
		if fn.Pkg() != nil && fn.Pkg().Path() == "os" && fn.Name() == "Rename" {
			return "unchecked error from os.Rename — a failed rename must fail the commit, not vanish"
		}
		return ""
	}
	recv := sig.Recv().Type()
	if analysis.IsNamedType(recv, "os", "File") {
		if fileMethods[fn.Name()] {
			return "unchecked error from (*os.File)." + fn.Name() +
				" — in durability-critical code every sync/close/write error must be checked or explicitly discarded with _ ="
		}
		return ""
	}
	if durableMethods[fn.Name()] && moduleLocalReceiver(recv, pass.Pkg) {
		return "unchecked error from (" + types.TypeString(recv, types.RelativeTo(pass.Pkg)) + ")." + fn.Name() +
			" — durability-surface errors must be checked or explicitly discarded with _ ="
	}
	return ""
}

// returnsError reports whether the function's last result is error.
func returnsError(fn *types.Func) bool {
	res := fn.Type().(*types.Signature).Results()
	if res.Len() == 0 {
		return false
	}
	last := res.At(res.Len() - 1).Type()
	return types.Identical(last, types.Universe.Lookup("error").Type())
}

// moduleLocalReceiver reports whether the receiver's named type is
// declared in this module (same first import-path element as the analyzed
// package), which is what separates the journal's durability surface from
// stdlib types like net.Conn whose Close is not a persistence promise.
func moduleLocalReceiver(t types.Type, analyzed *types.Package) bool {
	for {
		p, ok := t.(*types.Pointer)
		if !ok {
			break
		}
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	pkg := n.Obj().Pkg()
	if pkg == nil {
		return false
	}
	return firstPathElem(pkg.Path()) == firstPathElem(analyzed.Path())
}

func firstPathElem(path string) string {
	for i := 0; i < len(path); i++ {
		if path[i] == '/' {
			return path[:i]
		}
	}
	return path
}
