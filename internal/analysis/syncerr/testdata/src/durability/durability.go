// Package durability is the syncerr fixture: a miniature journal whose
// error discipline the analyzer must police exactly as it polices
// internal/wal and internal/serve.
package durability

import (
	"os"
	"strings"
)

// Journal stands in for wal.Log: a module-local type with a durability
// surface (error-returning Close/Append/Sync/TruncateBelow).
type Journal struct{}

func (j *Journal) Close() error              { return nil }
func (j *Journal) Append(wm uint64) error    { return nil }
func (j *Journal) Sync() error               { return nil }
func (j *Journal) TruncateBelow(uint64) error { return nil }
func (j *Journal) Batches() int              { return 0 }

func bad(f *os.File, j *Journal) {
	f.Sync()             // want `unchecked error from \(\*os.File\).Sync`
	f.Close()            // want `unchecked error from \(\*os.File\).Close`
	f.Write([]byte("x")) // want `unchecked error from \(\*os.File\).Write`
	f.WriteString("x")   // want `unchecked error from \(\*os.File\).WriteString`
	f.Truncate(0)        // want `unchecked error from \(\*os.File\).Truncate`
	os.Rename("a", "b")  // want `unchecked error from os.Rename`
	defer f.Close()      // want `unchecked error from \(\*os.File\).Close`
	go f.Close()         // want `unchecked error from \(\*os.File\).Close`
	j.Close()            // want `unchecked error from \(\*Journal\).Close`
	j.Append(7)          // want `unchecked error from \(\*Journal\).Append`
	j.TruncateBelow(7)   // want `unchecked error from \(\*Journal\).TruncateBelow`
}

func good(f *os.File, j *Journal) error {
	if err := f.Sync(); err != nil {
		return err
	}
	_ = f.Close() // explicit discard is visible in review — allowed
	if err := os.Rename("a", "b"); err != nil {
		return err
	}
	j.Batches() // no error result — nothing to check
	// WriteString on a non-file, non-module type is not a durability
	// surface (the method-name match is receiver-typed, not name-only).
	var b strings.Builder
	b.WriteString("ok")
	return j.Close()
}

func suppressed(f *os.File) {
	//rtklint:ignore syncerr fixture: read-side close, nothing to lose
	f.Close()
	f.Sync() //rtklint:ignore syncerr fixture: same-line suppression
}

// A directive without a reason is itself a finding; the expectation is a
// block comment because the directive comment runs to end of line.
func malformed(f *os.File) {
	_ = f /* want `malformed rtklint:ignore directive: has no reason` */ //rtklint:ignore syncerr
}
