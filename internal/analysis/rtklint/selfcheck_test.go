package rtklint

import (
	"bytes"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// moduleRoot locates the repo root via the go tool, so the test works from
// any package directory.
func moduleRoot(t *testing.T) string {
	t.Helper()
	var out bytes.Buffer
	cmd := exec.Command("go", "env", "GOMOD")
	cmd.Stdout = &out
	if err := cmd.Run(); err != nil {
		t.Fatalf("go env GOMOD: %v", err)
	}
	gomod := strings.TrimSpace(out.String())
	if gomod == "" || gomod == "/dev/null" {
		t.Fatal("not inside a module")
	}
	return filepath.Dir(gomod)
}

// TestRepoIsClean is the meta-check: the repository must satisfy its own
// invariants. Every finding here is either a real bug to fix or a contract
// to suppress with a written reason — never something to ignore, because
// CI runs exactly this suite via cmd/rtklint.
func TestRepoIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole repo")
	}
	findings, err := Run(moduleRoot(t), Suite(), []string{"./..."})
	if err != nil {
		t.Fatalf("rtklint: %v", err)
	}
	for _, f := range findings {
		t.Errorf("%s", f)
	}
	if len(findings) > 0 {
		t.Fatalf("repo violates its own invariants: %d findings", len(findings))
	}
}

// TestSuiteScopes pins the analyzer-to-package scoping: the durability
// checker watches the journal and serving layer, the determinism checker
// watches the kernels, and the generator keeps its seed-flag exemption.
func TestSuiteScopes(t *testing.T) {
	byName := map[string]int{}
	suite := Suite()
	for i, s := range suite {
		byName[s.Analyzer.Name] = i
	}
	for name, want := range map[string]struct{ in, out string }{
		"syncerr":   {"repro/internal/wal", "repro/internal/rwr"},
		"detkernel": {"repro/internal/rwr", "repro/internal/serve"},
		"seedflow":  {"repro/internal/serve", "repro/internal/gen"},
	} {
		i, ok := byName[name]
		if !ok {
			t.Fatalf("suite is missing %s", name)
		}
		if !suite[i].Applies(want.in) {
			t.Errorf("%s does not apply to %s", name, want.in)
		}
		if suite[i].Applies(want.out) {
			t.Errorf("%s wrongly applies to %s", name, want.out)
		}
	}
	for _, name := range []string{"lockguard", "atomicfield"} {
		i, ok := byName[name]
		if !ok {
			t.Fatalf("suite is missing %s", name)
		}
		if !suite[i].Applies("repro/internal/serve") || !suite[i].Applies("repro/internal/lbindex") {
			t.Errorf("%s must apply repo-wide", name)
		}
	}
}
