// Package rtklint assembles the project's scoped analyzer suite and runs
// it over loaded packages. Both the cmd/rtklint driver and the self-check
// test (which asserts the repo itself is clean) use this package, so the
// rules enforced in CI and the rules tested are one definition.
package rtklint

import (
	"fmt"
	"sort"

	"repro/internal/analysis"
	"repro/internal/analysis/atomicfield"
	"repro/internal/analysis/detkernel"
	"repro/internal/analysis/lockguard"
	"repro/internal/analysis/seedflow"
	"repro/internal/analysis/syncerr"
)

// Suite is the full scoped analyzer suite. Scopes follow the invariants:
// syncerr guards the durability packages, detkernel the bit-identical
// kernels, lockguard and atomicfield apply everywhere annotations or
// atomics appear, and seedflow applies everywhere except the dataset
// generator (which owns the seed flag itself).
func Suite() []analysis.Scoped {
	return []analysis.Scoped{
		{Analyzer: syncerr.Analyzer, Match: analysis.OneOf(
			"repro/internal/wal",
			"repro/internal/serve",
		)},
		{Analyzer: detkernel.Analyzer, Match: analysis.OneOf(
			"repro/internal/rwr",
			"repro/internal/vecmath",
			"repro/internal/bca",
			"repro/internal/core",
		)},
		{Analyzer: lockguard.Analyzer},
		{Analyzer: atomicfield.Analyzer},
		{Analyzer: seedflow.Analyzer, Match: analysis.AllBut(
			"repro/internal/gen",
		)},
	}
}

// Finding is one printed diagnostic.
type Finding struct {
	File    string
	Line    int
	Col     int
	Message string // includes the trailing "(analyzer)" tag
}

func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: %s", f.File, f.Line, f.Col, f.Message)
}

// Run loads the packages matching patterns (resolved from dir) and applies
// every in-scope analyzer, returning findings sorted by position.
// Malformed suppression directives are reported once, not once per
// analyzer that scanned the file.
func Run(dir string, suite []analysis.Scoped, patterns []string) ([]Finding, error) {
	pkgs, err := analysis.Load(dir, patterns...)
	if err != nil {
		return nil, err
	}
	var findings []Finding
	seen := map[string]bool{}
	for _, pkg := range pkgs {
		for _, s := range suite {
			if !s.Applies(pkg.ImportPath) {
				continue
			}
			diags, err := analysis.Run(s.Analyzer, pkg)
			if err != nil {
				return nil, err
			}
			for _, d := range diags {
				p := pkg.Fset.Position(d.Pos)
				key := fmt.Sprintf("%s:%d:%d:%s", p.Filename, p.Line, p.Column, d.Message)
				if seen[key] {
					continue
				}
				seen[key] = true
				findings = append(findings, Finding{
					File: p.Filename, Line: p.Line, Col: p.Column,
					Message: fmt.Sprintf("%s (%s)", d.Message, d.Analyzer),
				})
			}
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Col < b.Col
	})
	return findings, nil
}
