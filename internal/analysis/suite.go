package analysis

import "strings"

// Scoped is one analyzer plus the package scope it applies to. Scoping
// lives here, next to the framework, so cmd/rtklint and the self-check
// test enforce identical rules.
type Scoped struct {
	Analyzer *Analyzer
	// Match reports whether the analyzer applies to the import path. A nil
	// Match means "every package".
	Match func(importPath string) bool
}

// Applies reports whether the scoped analyzer covers the package.
func (s Scoped) Applies(importPath string) bool {
	return s.Match == nil || s.Match(importPath)
}

// Only restricts a suite to the named analyzers (comma-separated); an
// empty name list returns the suite unchanged.
func Only(suite []Scoped, names string) []Scoped {
	if names == "" {
		return suite
	}
	want := map[string]bool{}
	for _, n := range strings.Split(names, ",") {
		if n = strings.TrimSpace(n); n != "" {
			want[n] = true
		}
	}
	var out []Scoped
	for _, s := range suite {
		if want[s.Analyzer.Name] {
			out = append(out, s)
		}
	}
	return out
}

// OneOf builds a Match over an explicit import-path set.
func OneOf(paths ...string) func(string) bool {
	set := map[string]bool{}
	for _, p := range paths {
		set[p] = true
	}
	return func(importPath string) bool { return set[importPath] }
}

// AllBut builds a Match excluding an explicit import-path set.
func AllBut(paths ...string) func(string) bool {
	set := map[string]bool{}
	for _, p := range paths {
		set[p] = true
	}
	return func(importPath string) bool { return !set[importPath] }
}
