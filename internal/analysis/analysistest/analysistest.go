// Package analysistest runs an analyzer over fixture packages and checks
// its findings against expectations written in the fixtures themselves —
// the same contract as golang.org/x/tools/go/analysis/analysistest,
// rebuilt on the project's stdlib-only framework.
//
// A fixture line states its expected findings with a trailing comment:
//
//	f.Sync() // want `unchecked error`
//
// Each quoted string (double-quoted or backquoted) is a regular expression
// that must match one distinct diagnostic reported on that line; lines
// without a want comment must produce no diagnostics. Fixtures live under
// testdata/src/<name>/ and may import only packages resolvable by the go
// tool (the standard library).
package analysistest

import (
	"fmt"
	"go/token"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"repro/internal/analysis"
)

// wantPayload extracts the expectation payload from a comment's text, or
// "" for non-want comments. Both comment forms work; the block form
// `/* want "re" */` exists for lines whose trailing line comment is itself
// under test (an rtklint:ignore directive runs to end of line, so a want
// after it would become part of the directive).
func wantPayload(text string) string {
	switch {
	case strings.HasPrefix(text, "//"):
		text = text[2:]
	case strings.HasPrefix(text, "/*"):
		text = strings.TrimSuffix(strings.TrimPrefix(text, "/*"), "*/")
	}
	text = strings.TrimSpace(text)
	if rest, ok := strings.CutPrefix(text, "want "); ok {
		return strings.TrimSpace(rest)
	}
	return ""
}

// expectation is one want-regexp on one fixture line.
type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	met  bool
}

// Run loads each fixture package testdata/src/<pkg>, applies the analyzer
// (suppression directives included, exactly as the rtklint driver does),
// and reports any mismatch between expected and actual findings.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, pkgs ...string) {
	t.Helper()
	for _, name := range pkgs {
		dir := filepath.Join(testdata, "src", name)
		pkg, err := analysis.LoadDir(dir)
		if err != nil {
			t.Errorf("loading fixture %s: %v", name, err)
			continue
		}
		diags, err := analysis.Run(a, pkg)
		if err != nil {
			t.Errorf("running %s on fixture %s: %v", a.Name, name, err)
			continue
		}
		checkExpectations(t, name, pkg.Fset, collectWants(t, pkg), diags)
	}
}

// collectWants parses every want comment in the fixture.
func collectWants(t *testing.T, pkg *analysis.Pkg) []*expectation {
	t.Helper()
	var wants []*expectation
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				payload := wantPayload(c.Text)
				if payload == "" {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				patterns, err := parseWants(payload)
				if err != nil {
					t.Errorf("%s:%d: bad want comment: %v", pos.Filename, pos.Line, err)
					continue
				}
				for _, p := range patterns {
					re, err := regexp.Compile(p)
					if err != nil {
						t.Errorf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, p, err)
						continue
					}
					wants = append(wants, &expectation{file: pos.Filename, line: pos.Line, re: re})
				}
			}
		}
	}
	return wants
}

// parseWants splits a want payload into its quoted regexp strings.
func parseWants(s string) ([]string, error) {
	var out []string
	s = strings.TrimSpace(s)
	for s != "" {
		var quote byte
		switch s[0] {
		case '"', '`':
			quote = s[0]
		default:
			return nil, fmt.Errorf("expected quoted regexp at %q", s)
		}
		end := strings.IndexByte(s[1:], quote)
		if end < 0 {
			return nil, fmt.Errorf("unterminated regexp in %q", s)
		}
		raw := s[:end+2]
		var pat string
		if quote == '`' {
			pat = raw[1 : len(raw)-1]
		} else {
			var err error
			pat, err = strconv.Unquote(raw)
			if err != nil {
				return nil, fmt.Errorf("bad quoted regexp %s: %v", raw, err)
			}
		}
		out = append(out, pat)
		s = strings.TrimSpace(s[end+2:])
	}
	return out, nil
}

// checkExpectations matches findings against wants one-to-one.
func checkExpectations(t *testing.T, fixture string, fset *token.FileSet, wants []*expectation, diags []analysis.Diagnostic) {
	t.Helper()
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		matched := false
		for _, w := range wants {
			if w.met || w.file != pos.Filename || w.line != pos.Line {
				continue
			}
			if w.re.MatchString(d.Message) {
				w.met = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("fixture %s: unexpected diagnostic at %s:%d: %s", fixture, pos.Filename, pos.Line, d.Message)
		}
	}
	for _, w := range wants {
		if !w.met {
			t.Errorf("fixture %s: no diagnostic at %s:%d matching %q", fixture, w.file, w.line, w.re)
		}
	}
}
