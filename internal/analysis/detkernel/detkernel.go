// Package detkernel checks the bit-identical kernel packages (rwr,
// vecmath, bca, core hot paths) for nondeterminism sources the type system
// cannot see. The exactness lineage of the reproduction — every
// parallel/batched/sharded path bit-identical to the scalar engine — dies
// the moment a kernel:
//
//   - draws from the global math/rand source or a time-seeded one
//     (run-to-run nondeterminism; kernels must take explicit seeds or a
//     caller-provided *rand.Rand — the PR 8 contract);
//   - accumulates floating point while ranging over a map (iteration
//     order varies per run, and float addition does not commute in
//     rounding);
//   - accumulates floating point from channel receives (worker completion
//     order is scheduler-dependent — partials must be merged in ascending
//     block order by the blessed block-reduce helpers instead).
package detkernel

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "detkernel",
	Doc:  "kernel packages must be deterministic: no ambient rand, no map-order or channel-order float reductions",
	Run:  run,
}

// globalRandFuncs are the math/rand package-level functions backed by the
// process-global (randomly seeded) source.
var globalRandFuncs = map[string]bool{
	"Int": true, "Intn": true, "Int31": true, "Int31n": true,
	"Int63": true, "Int63n": true, "Uint32": true, "Uint64": true,
	"Float32": true, "Float64": true, "ExpFloat64": true,
	"NormFloat64": true, "Perm": true, "Shuffle": true, "Seed": true,
	"Read": true,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		checkRand(pass, f)
		checkMapRangeAccum(pass, f)
		checkChannelAccum(pass, f)
	}
	return nil
}

// checkRand flags global math/rand draws and time-seeded sources.
func checkRand(pass *analysis.Pass, f *ast.File) {
	ast.Inspect(f, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := analysis.CalleeFunc(pass.Info, call)
		if fn == nil || fn.Pkg() == nil {
			return true
		}
		if isRandPkg(fn.Pkg().Path()) && fn.Type().(*types.Signature).Recv() == nil {
			if globalRandFuncs[fn.Name()] {
				pass.Reportf(call.Pos(), "kernel uses the global %s.%s source — kernels must draw from an explicitly seeded *rand.Rand passed by the caller",
					fn.Pkg().Path(), fn.Name())
			}
			if fn.Name() == "NewSource" || fn.Name() == "New" || fn.Name() == "NewPCG" || fn.Name() == "NewChaCha8" {
				if tc := findAmbientEntropy(pass, call); tc != "" {
					pass.Reportf(call.Pos(), "kernel seeds a rand source from %s — seeds must be explicit caller-provided values so runs are reproducible", tc)
				}
			}
		}
		return true
	})
}

func isRandPkg(path string) bool {
	return path == "math/rand" || path == "math/rand/v2"
}

// findAmbientEntropy reports the first ambient-entropy call (time.Now,
// os.Getpid, crypto/rand reads) inside the expression tree, or "".
func findAmbientEntropy(pass *analysis.Pass, root ast.Node) string {
	found := ""
	ast.Inspect(root, func(n ast.Node) bool {
		if found != "" {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := analysis.CalleeFunc(pass.Info, call)
		if fn == nil || fn.Pkg() == nil {
			return true
		}
		switch {
		case fn.Pkg().Path() == "time" && fn.Name() == "Now":
			found = "time.Now"
		case fn.Pkg().Path() == "os" && (fn.Name() == "Getpid" || fn.Name() == "Getppid"):
			found = "os." + fn.Name()
		case fn.Pkg().Path() == "crypto/rand":
			found = "crypto/rand." + fn.Name()
		}
		return true
	})
	return found
}

// checkMapRangeAccum flags float accumulation into an outer variable
// inside a range over a map.
func checkMapRangeAccum(pass *analysis.Pass, f *ast.File) {
	ast.Inspect(f, func(n ast.Node) bool {
		rng, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		tv, ok := pass.Info.Types[rng.X]
		if !ok {
			return true
		}
		if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
			return true
		}
		reportFloatAccum(pass, rng.Body, rng.Body.Pos(),
			"float accumulation inside a map range — iteration order is nondeterministic and float addition does not commute in rounding; accumulate over a sorted key slice instead")
		return true
	})
}

// checkChannelAccum flags float accumulation whose right-hand side
// receives from a channel, and float accumulation inside a range over a
// channel — both merge worker partials in completion order.
func checkChannelAccum(pass *analysis.Pass, f *ast.File) {
	ast.Inspect(f, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.RangeStmt:
			tv, ok := pass.Info.Types[st.X]
			if !ok {
				return true
			}
			if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
				reportFloatAccum(pass, st.Body, st.Body.Pos(),
					"float accumulation inside a channel range — receive order is scheduler-dependent; merge worker partials in ascending block order (block-reduce) instead")
			}
		case *ast.AssignStmt:
			if !isAccumAssign(st) || !lhsIsFloat(pass, st.Lhs[0]) {
				return true
			}
			if containsReceive(st.Rhs[0]) {
				pass.Reportf(st.Pos(), "float accumulation from a channel receive — receive order is scheduler-dependent; merge worker partials in ascending block order (block-reduce) instead")
			}
		}
		return true
	})
}

// reportFloatAccum reports every accumulating assignment into a float
// variable declared OUTSIDE the given body.
func reportFloatAccum(pass *analysis.Pass, body *ast.BlockStmt, bodyPos token.Pos, msg string) {
	ast.Inspect(body, func(n ast.Node) bool {
		st, ok := n.(*ast.AssignStmt)
		if !ok || !isAccumAssign(st) {
			return true
		}
		lhs := st.Lhs[0]
		if !lhsIsFloat(pass, lhs) {
			return true
		}
		if declaredWithin(pass, lhs, bodyPos, body.End()) {
			return true
		}
		pass.Reportf(st.Pos(), "%s", msg)
		return true
	})
}

// isAccumAssign matches x += e, x -= e, x *= e (order-sensitive in floats).
func isAccumAssign(st *ast.AssignStmt) bool {
	switch st.Tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN:
		return len(st.Lhs) == 1
	}
	return false
}

func lhsIsFloat(pass *analysis.Pass, e ast.Expr) bool {
	tv, ok := pass.Info.Types[e]
	if !ok {
		return false
	}
	b, ok := tv.Type.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// declaredWithin reports whether the assigned variable is declared inside
// [lo, hi) — a loop-local accumulator is order-safe because it never
// escapes one iteration's scope... except it does across iterations; what
// matters is whether it outlives the loop. An identifier declared inside
// the body cannot.
func declaredWithin(pass *analysis.Pass, e ast.Expr, lo, hi token.Pos) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return false // selector/index targets live outside by construction
	}
	obj := pass.Info.Uses[id]
	if obj == nil {
		obj = pass.Info.Defs[id]
	}
	if obj == nil {
		return false
	}
	return obj.Pos() >= lo && obj.Pos() < hi
}

// containsReceive reports whether the expression contains <-ch.
func containsReceive(e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if u, ok := n.(*ast.UnaryExpr); ok && u.Op == token.ARROW {
			found = true
			return false
		}
		return !found
	})
	return found
}
