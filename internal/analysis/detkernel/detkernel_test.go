package detkernel_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/detkernel"
)

func TestDetkernel(t *testing.T) {
	analysistest.Run(t, "testdata", detkernel.Analyzer, "kernel")
}
