// Package kernel is the detkernel fixture: the nondeterminism patterns the
// bit-identical kernel packages must never contain, next to the
// deterministic formulations they must use instead.
package kernel

import (
	"math/rand"
	"sort"
	"time"
)

func globalDraw() int {
	return rand.Intn(10) // want `global math/rand.Intn source`
}

func globalShuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want `global math/rand.Shuffle source`
}

func timeSeeded() *rand.Rand {
	return rand.New(rand.NewSource(time.Now().UnixNano())) // want `seeds a rand source from time.Now` `seeds a rand source from time.Now`
}

// seeded is the blessed pattern: the seed arrives from the caller.
func seeded(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

func mapAccum(m map[int]float64) float64 {
	var sum float64
	for _, v := range m {
		sum += v // want `float accumulation inside a map range`
	}
	return sum
}

// mapAccumSorted is the deterministic formulation: range the map only to
// collect keys, sort, accumulate over the slice.
func mapAccumSorted(m map[int]float64) float64 {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	var sum float64
	for _, k := range keys {
		sum += m[k]
	}
	return sum
}

// mapLocalAccum is order-safe: the accumulator is declared inside the map
// range body, so no cross-iteration float state depends on map order.
func mapLocalAccum(m map[int][]float64) float64 {
	n := 0
	var best float64
	for _, vs := range m {
		var local float64
		for _, v := range vs {
			local += v
		}
		if local > best {
			best = local
		}
		n++
	}
	_ = n
	return best
}

func chanRangeAccum(ch chan float64) float64 {
	var sum float64
	for v := range ch {
		sum += v // want `float accumulation inside a channel range`
	}
	return sum
}

func chanRecvAccum(ch chan float64) float64 {
	var sum float64
	for i := 0; i < 4; i++ {
		sum += <-ch // want `float accumulation from a channel receive`
	}
	return sum
}

// chanIndexedMerge is the blessed block-reduce shape: receives carry their
// block index, partials land in a slice, and the final reduction runs in
// ascending block order.
func chanIndexedMerge(ch chan struct {
	Block int
	Sum   float64
}, blocks int) float64 {
	partial := make([]float64, blocks)
	for i := 0; i < blocks; i++ {
		p := <-ch
		partial[p.Block] = p.Sum
	}
	var sum float64
	for _, v := range partial {
		sum += v
	}
	return sum
}

func suppressed(m map[int]float64) float64 {
	var sum float64
	for _, v := range m {
		//rtklint:ignore detkernel fixture: diagnostics-only total, never compared bitwise
		sum += v
	}
	return sum
}
