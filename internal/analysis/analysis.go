// Package analysis is the project's static-analysis framework: the
// scaffolding under cmd/rtklint, the multichecker that machine-checks the
// repo's determinism, locking and durability invariants.
//
// The API deliberately mirrors golang.org/x/tools/go/analysis — an
// Analyzer owns a Run function over a Pass carrying the type-checked
// package — but is built on the standard library alone (go/ast, go/types,
// and `go list -export` for dependency type information), because this
// repository vendors no third-party modules. If x/tools ever becomes
// available, each analyzer's Run ports over mechanically.
//
// The invariants the hosted analyzers enforce, and why they exist, are
// documented in README.md ("Static analysis & invariants") and on each
// analyzer package. Findings can be suppressed — narrowly, with a written
// reason — by a `//rtklint:ignore <analyzer> <reason>` comment on the
// flagged line or the line above it; see suppress.go.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Analyzer is one named invariant check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //rtklint:ignore directives. Lowercase, no spaces.
	Name string
	// Doc is the one-line invariant statement shown by `rtklint -list`.
	Doc string
	// Run reports the analyzer's findings for one package via
	// Pass.Report. A returned error aborts the whole rtklint run — it
	// means the analyzer itself failed, not that the code has findings.
	Run func(*Pass) error
}

// Pass carries one type-checked package through one analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	// Files are the package's parsed source files, comments included.
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info

	diags []Diagnostic
}

// Diagnostic is one finding at one position.
type Diagnostic struct {
	Pos      token.Pos
	Message  string
	Analyzer string
}

// Reportf records a finding.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{
		Pos:      pos,
		Message:  fmt.Sprintf(format, args...),
		Analyzer: p.Analyzer.Name,
	})
}

// Run applies one analyzer to one loaded package and returns its findings
// with suppression directives applied: suppressed findings are dropped,
// and malformed directives are themselves reported as findings (a
// suppression without a reason is exactly the silent hole the directive
// syntax exists to prevent).
func Run(a *Analyzer, pkg *Pkg) ([]Diagnostic, error) {
	pass := &Pass{
		Analyzer: a,
		Fset:     pkg.Fset,
		Files:    pkg.Files,
		Pkg:      pkg.Types,
		Info:     pkg.Info,
	}
	if err := a.Run(pass); err != nil {
		return nil, fmt.Errorf("analyzer %s on %s: %w", a.Name, pkg.ImportPath, err)
	}
	kept, malformed := filterSuppressed(pkg.Fset, pkg.Files, a.Name, pass.diags)
	kept = append(kept, malformed...)
	sort.Slice(kept, func(i, j int) bool { return kept[i].Pos < kept[j].Pos })
	return kept, nil
}

// derefType unwraps pointers from t.
func derefType(t types.Type) types.Type {
	for {
		p, ok := t.(*types.Pointer)
		if !ok {
			return t
		}
		t = p.Elem()
	}
}

// IsNamedType reports whether t (after deref) is the named type
// pkgPath.name.
func IsNamedType(t types.Type, pkgPath, name string) bool {
	n, ok := derefType(t).(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == pkgPath && obj.Name() == name
}

// CalleeFunc resolves the called function or method object of a call
// expression, or nil when the callee is not a statically known func (a
// func-typed variable, a conversion, a builtin).
func CalleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		f, _ := info.Uses[fun].(*types.Func)
		return f
	case *ast.SelectorExpr:
		f, _ := info.Uses[fun.Sel].(*types.Func)
		return f
	}
	return nil
}

// IsPkgFunc reports whether the call statically resolves to the package
// function pkgPath.name (not a method).
func IsPkgFunc(info *types.Info, call *ast.CallExpr, pkgPath, name string) bool {
	f := CalleeFunc(info, call)
	return f != nil && f.Pkg() != nil && f.Pkg().Path() == pkgPath &&
		f.Name() == name && f.Type().(*types.Signature).Recv() == nil
}
