package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

const suppressSrc = `package p

func a() {
	//rtklint:ignore alpha covered by the caller's lock
	_ = 1 // finding on this line: suppressed for alpha only
	_ = 2 //rtklint:ignore alpha,beta same-line, two analyzers
	_ = 3
	_ = 4 //rtklint:ignore beta
	_ = 5 //rtklint:ignore
}
`

// lineDiag fabricates a diagnostic on the given 1-based line.
func lineDiag(f *token.File, line int, analyzer string) Diagnostic {
	return Diagnostic{Pos: f.LineStart(line), Message: "finding", Analyzer: analyzer}
}

func parseSuppressSrc(t *testing.T) (*token.FileSet, *ast.File) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", suppressSrc, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	return fset, f
}

func TestSuppressionCoversLineAndLineBelow(t *testing.T) {
	fset, f := parseSuppressSrc(t)
	tf := fset.File(f.Pos())
	diags := []Diagnostic{
		lineDiag(tf, 5, "alpha"), // standalone directive on line 4 covers line 5
		lineDiag(tf, 6, "alpha"), // trailing directive covers its own line
		lineDiag(tf, 6, "beta"),  // same directive names both
		lineDiag(tf, 7, "alpha"), // line 6's TRAILING directive must not leak here
	}
	kept, _ := filterSuppressed(fset, []*ast.File{f}, "alpha", diags[:2])
	if len(kept) != 0 {
		t.Fatalf("alpha diagnostics on covered lines kept: %v", kept)
	}
	kept, _ = filterSuppressed(fset, []*ast.File{f}, "beta", diags[2:3])
	if len(kept) != 0 {
		t.Fatalf("beta diagnostic on covered line kept: %v", kept)
	}
	kept, _ = filterSuppressed(fset, []*ast.File{f}, "alpha", diags[3:])
	if len(kept) != 1 {
		t.Fatalf("trailing directive leaked onto the next line: kept %v", kept)
	}
}

func TestSuppressionIsPerAnalyzer(t *testing.T) {
	fset, f := parseSuppressSrc(t)
	tf := fset.File(f.Pos())
	// The line-4 directive names alpha only; a beta finding on line 5 stays.
	kept, _ := filterSuppressed(fset, []*ast.File{f}, "beta", []Diagnostic{lineDiag(tf, 5, "beta")})
	if len(kept) != 1 {
		t.Fatalf("beta finding suppressed by an alpha-only directive: kept %v", kept)
	}
}

func TestMalformedDirectivesReported(t *testing.T) {
	fset, f := parseSuppressSrc(t)
	// Line 8's directive has no reason; line 9's names no analyzer. Both
	// must surface as diagnostics, and neither suppresses anything.
	tf := fset.File(f.Pos())
	kept, malformed := filterSuppressed(fset, []*ast.File{f}, "beta", []Diagnostic{lineDiag(tf, 8, "beta")})
	if len(kept) != 1 {
		t.Fatalf("reasonless directive still suppressed its line: kept %v", kept)
	}
	if len(malformed) != 2 {
		t.Fatalf("got %d malformed-directive reports, want 2: %v", len(malformed), malformed)
	}
	var noReason, noAnalyzer bool
	for _, d := range malformed {
		if strings.Contains(d.Message, "no reason") {
			noReason = true
		}
		if strings.Contains(d.Message, "names no analyzer") {
			noAnalyzer = true
		}
	}
	if !noReason || !noAnalyzer {
		t.Fatalf("malformed reports missing a case: %v", malformed)
	}
}
