package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// Pkg is one loaded, parsed and type-checked package ready for analysis.
type Pkg struct {
	ImportPath string
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	Info       *types.Info
}

// listedPkg is the subset of `go list -json` output the loader consumes.
type listedPkg struct {
	ImportPath string
	Dir        string
	Export     string
	DepOnly    bool
	Standard   bool
	GoFiles    []string
	Error      *struct{ Err string }
}

// goList runs `go list -deps -json -export` in dir over the given patterns
// and decodes the JSON stream. -export makes the go tool compile every
// listed package (build-cache backed), so each entry carries an export-data
// file the gc importer can read — that is what lets the loader type-check
// one package from source while importing all its dependencies without any
// third-party machinery.
func goList(dir string, patterns []string) ([]listedPkg, error) {
	args := append([]string{"list", "-deps", "-json", "-export", "--"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}
	var pkgs []listedPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listedPkg
		if derr := dec.Decode(&p); derr == io.EOF {
			break
		} else if derr != nil {
			return nil, fmt.Errorf("decoding go list output: %w", derr)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// exportImporter returns a gc-export-data importer over the listed
// packages. Import paths missing from the table fail, which surfaces a
// loader bug immediately instead of silently type-checking against nothing.
func exportImporter(fset *token.FileSet, pkgs []listedPkg) types.Importer {
	exports := make(map[string]string, len(pkgs))
	for _, p := range pkgs {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}
	lookup := func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	}
	return importer.ForCompiler(fset, "gc", lookup)
}

// Load lists, parses and type-checks the packages matching the patterns,
// resolved relative to dir (typically the module root, patterns like
// "./..."). Dependencies are imported from compiler export data; only the
// matched packages themselves are parsed from source. Test files are not
// loaded — the analyzers audit shipped code, and fixtures exercise test
// idioms explicitly where needed.
func Load(dir string, patterns ...string) ([]*Pkg, error) {
	listed, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	imp := exportImporter(fset, listed)
	var out []*Pkg
	for _, lp := range listed {
		if lp.DepOnly || lp.Standard {
			continue
		}
		if lp.Error != nil {
			return nil, fmt.Errorf("package %s: %s", lp.ImportPath, lp.Error.Err)
		}
		var names []string
		for _, f := range lp.GoFiles {
			names = append(names, filepath.Join(lp.Dir, f))
		}
		pkg, err := checkFiles(fset, imp, lp.ImportPath, names)
		if err != nil {
			return nil, err
		}
		pkg.Dir = lp.Dir
		out = append(out, pkg)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ImportPath < out[j].ImportPath })
	return out, nil
}

// LoadDir parses and type-checks every .go file in one directory as a
// single package outside any module — the analysistest fixture loader.
// Fixture imports must be resolvable by `go list` from dir's context
// (standard library in practice).
func LoadDir(dir string) (*Pkg, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			names = append(names, filepath.Join(dir, e.Name()))
		}
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("analysis: no .go files in %s", dir)
	}
	files, err := parseFiles(fset, names)
	if err != nil {
		return nil, err
	}
	// Resolve the fixture's imports through the go tool so stdlib export
	// data is available, exactly as in a full Load.
	seen := map[string]bool{}
	var imports []string
	for _, f := range files {
		for _, spec := range f.Imports {
			p := strings.Trim(spec.Path.Value, `"`)
			if !seen[p] {
				seen[p] = true
				imports = append(imports, p)
			}
		}
	}
	var listed []listedPkg
	if len(imports) > 0 {
		sort.Strings(imports)
		listed, err = goList(dir, imports)
		if err != nil {
			return nil, err
		}
	}
	imp := exportImporter(fset, listed)
	pkg, err := check(fset, imp, files[0].Name.Name, files)
	if err != nil {
		return nil, err
	}
	pkg.Dir = dir
	return pkg, nil
}

func parseFiles(fset *token.FileSet, names []string) ([]*ast.File, error) {
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

func checkFiles(fset *token.FileSet, imp types.Importer, path string, names []string) (*Pkg, error) {
	files, err := parseFiles(fset, names)
	if err != nil {
		return nil, err
	}
	return check(fset, imp, path, files)
}

func check(fset *token.FileSet, imp types.Importer, path string, files []*ast.File) (*Pkg, error) {
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %w", path, err)
	}
	return &Pkg{
		ImportPath: path,
		Fset:       fset,
		Files:      files,
		Types:      tpkg,
		Info:       info,
	}, nil
}
