package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// IgnoreDirective is the suppression comment rtklint honors:
//
//	//rtklint:ignore <analyzer>[,<analyzer>...] <reason>
//
// placed trailing on the flagged line, or standalone on the line directly
// above it. Each form covers exactly one line — a trailing directive does
// not leak onto the next line. The reason is mandatory — a suppression is
// a reviewed exception to a machine-checked invariant, and the exception's
// justification must travel with the code. A directive missing its
// analyzer list or its reason is itself reported.
const IgnoreDirective = "rtklint:ignore"

// directive is one parsed //rtklint:ignore comment.
type directive struct {
	pos        token.Pos
	analyzers  map[string]bool
	standalone bool   // alone on its line (covers the next line), vs trailing code (covers its own)
	malformed  string // non-empty description when the directive is unusable
}

// parseDirectives collects every rtklint:ignore directive in the files,
// keyed by "filename:line" of the comment.
func parseDirectives(fset *token.FileSet, files []*ast.File) map[string]directive {
	out := map[string]directive{}
	for _, f := range files {
		// Earliest code (non-comment node) start per line, to tell trailing
		// directives from standalone ones.
		codeStart := map[int]token.Pos{}
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil {
				return false
			}
			line := fset.Position(n.Pos()).Line
			if p, ok := codeStart[line]; !ok || n.Pos() < p {
				codeStart[line] = n.Pos()
			}
			return true
		})
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				if !strings.HasPrefix(text, IgnoreDirective) {
					continue
				}
				rest := strings.TrimSpace(strings.TrimPrefix(text, IgnoreDirective))
				d := directive{pos: c.Pos(), analyzers: map[string]bool{}}
				fields := strings.Fields(rest)
				switch {
				case len(fields) == 0:
					d.malformed = "names no analyzer"
				case len(fields) == 1:
					d.malformed = "has no reason — a suppression must say why the invariant does not apply"
				default:
					for _, a := range strings.Split(fields[0], ",") {
						if a != "" {
							d.analyzers[a] = true
						}
					}
				}
				p := fset.Position(c.Pos())
				start, hasCode := codeStart[p.Line]
				d.standalone = !hasCode || start > c.Pos()
				out[posKey(p.Filename, p.Line)] = d
			}
		}
	}
	return out
}

func posKey(file string, line int) string {
	var b strings.Builder
	b.WriteString(file)
	b.WriteByte(':')
	// Lines fit in a few digits; avoid fmt for the hot path.
	var digits [12]byte
	i := len(digits)
	if line == 0 {
		i--
		digits[i] = '0'
	}
	for line > 0 {
		i--
		digits[i] = byte('0' + line%10)
		line /= 10
	}
	b.Write(digits[i:])
	return b.String()
}

// filterSuppressed drops diagnostics covered by a matching ignore
// directive on their line or the line above, and reports malformed
// directives as diagnostics in their own right.
func filterSuppressed(fset *token.FileSet, files []*ast.File, analyzer string, diags []Diagnostic) (kept, malformed []Diagnostic) {
	dirs := parseDirectives(fset, files)
	if len(dirs) == 0 {
		return diags, nil
	}
	covers := func(d directive) bool {
		return d.malformed == "" && d.analyzers[analyzer]
	}
	for _, diag := range diags {
		p := fset.Position(diag.Pos)
		if d, ok := dirs[posKey(p.Filename, p.Line)]; ok && covers(d) && !d.standalone {
			continue
		}
		if d, ok := dirs[posKey(p.Filename, p.Line-1)]; ok && covers(d) && d.standalone {
			continue
		}
		kept = append(kept, diag)
	}
	for _, d := range dirs {
		if d.malformed != "" {
			malformed = append(malformed, Diagnostic{
				Pos:      d.pos,
				Message:  "malformed " + IgnoreDirective + " directive: " + d.malformed,
				Analyzer: analyzer,
			})
		}
	}
	return kept, malformed
}
