// Package seeds is the seedflow fixture: ambient-entropy patterns the
// analyzer must flag anywhere in the repo, next to the explicit-seed
// plumbing it must accept.
package seeds

import (
	"math/rand"
	"os"
	"time"
)

func draw() int {
	return rand.Intn(6) // want `process-global rand source`
}

func reseed() {
	rand.Seed(time.Now().UnixNano()) // want `process-global rand source`
}

func timeSeeded() *rand.Rand {
	return rand.New(rand.NewSource(time.Now().UnixNano())) // want `seeded from time.Now` `seeded from time.Now`
}

func pidSeeded() *rand.Rand {
	return rand.New(rand.NewSource(int64(os.Getpid()))) // want `seeded from os.Getpid` `seeded from os.Getpid`
}

// fromSeed is the blessed pattern: the seed is a caller-provided value,
// so a rerun with the same flag reproduces the run bit for bit.
func fromSeed(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

func fromConst() *rand.Rand {
	return rand.New(rand.NewSource(42))
}

func suppressed() int {
	//rtklint:ignore seedflow fixture: jitter for a retry backoff, never observable in results
	return rand.Intn(100)
}
