// Package seedflow enforces the repo-wide seed-provenance contract: every
// random source is constructed from an explicit caller-provided seed, and
// ambient entropy (the global math/rand source, time-of-day, process ids,
// crypto/rand) never flows into one. The reproduction's experiments are
// rerun-to-verify — `-seed 42` must produce the same walks, the same
// sampled landmarks, the same bytes on disk, on every machine, forever.
// One time.Now().UnixNano() seed buried in a helper silently converts
// "reproducible experiment" into "anecdote".
//
// detkernel enforces a stricter no-ambient-rand rule inside the numeric
// kernels; seedflow is the perimeter check for everything else. The
// dataset generator (internal/gen) is exempted by the driver — it owns the
// flag that turns a user-supplied seed into sources — and test files are
// never loaded by the analysis loader.
package seedflow

import (
	"go/ast"
	"go/types"

	"repro/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "seedflow",
	Doc:  "random sources must be seeded from explicit caller-provided values, never ambient entropy",
	Run:  run,
}

// globalRandFuncs are the math/rand package-level draws backed by the
// process-global source — using one means the caller's seed is ignored.
var globalRandFuncs = map[string]bool{
	"Int": true, "Intn": true, "Int31": true, "Int31n": true,
	"Int63": true, "Int63n": true, "Uint32": true, "Uint64": true,
	"Float32": true, "Float64": true, "ExpFloat64": true,
	"NormFloat64": true, "Perm": true, "Shuffle": true, "Seed": true,
	"Read": true,
}

// sourceCtors are the rand constructors whose seed arguments must be
// explicit values, not ambient entropy.
var sourceCtors = map[string]bool{
	"NewSource": true, "New": true, "NewPCG": true, "NewChaCha8": true,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := analysis.CalleeFunc(pass.Info, call)
			if fn == nil || fn.Pkg() == nil {
				return true
			}
			if !isRandPkg(fn.Pkg().Path()) || fn.Type().(*types.Signature).Recv() != nil {
				return true
			}
			switch {
			case globalRandFuncs[fn.Name()]:
				pass.Reportf(call.Pos(), "%s.%s uses the process-global rand source — thread an explicit seed (or a *rand.Rand built from one) from the caller instead",
					fn.Pkg().Path(), fn.Name())
			case sourceCtors[fn.Name()]:
				if src := ambientEntropy(pass, call); src != "" {
					pass.Reportf(call.Pos(), "rand source seeded from %s — seeds must be explicit caller-provided values so runs are reproducible", src)
				}
			}
			return true
		})
	}
	return nil
}

func isRandPkg(path string) bool {
	return path == "math/rand" || path == "math/rand/v2"
}

// ambientEntropy names the first ambient-entropy call in the expression
// tree (time.Now, os.Getpid, crypto/rand reads), or "".
func ambientEntropy(pass *analysis.Pass, root ast.Node) string {
	found := ""
	ast.Inspect(root, func(n ast.Node) bool {
		if found != "" {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := analysis.CalleeFunc(pass.Info, call)
		if fn == nil || fn.Pkg() == nil {
			return true
		}
		switch {
		case fn.Pkg().Path() == "time" && fn.Name() == "Now":
			found = "time.Now"
		case fn.Pkg().Path() == "os" && (fn.Name() == "Getpid" || fn.Name() == "Getppid"):
			found = "os." + fn.Name()
		case fn.Pkg().Path() == "crypto/rand":
			found = "crypto/rand." + fn.Name()
		}
		return true
	})
	return found
}
