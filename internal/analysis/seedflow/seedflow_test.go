package seedflow_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/seedflow"
)

func TestSeedflow(t *testing.T) {
	analysistest.Run(t, "testdata", seedflow.Analyzer, "seeds")
}
