package hub

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/bca"
	"repro/internal/graph"
	"repro/internal/rwr"
	"repro/internal/vecmath"
)

func toyGraph(t testing.TB) *graph.Graph {
	t.Helper()
	g, err := graph.FromEdges(6, [][2]graph.NodeID{
		{0, 1}, {0, 3}, {1, 0}, {1, 2}, {2, 1}, {2, 2},
		{3, 0}, {3, 1}, {3, 4}, {4, 0}, {4, 1}, {4, 4}, {5, 1}, {5, 5},
	}, graph.DanglingSelfLoop)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func randomGraph(seed int64, n int) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder(n)
	for i := 0; i < 4*n; i++ {
		b.AddEdge(graph.NodeID(rng.Intn(n)), graph.NodeID(rng.Intn(n)))
	}
	g, _, err := b.Build(graph.DanglingSelfLoop)
	if err != nil {
		panic(err)
	}
	return g
}

func TestSelectByDegree(t *testing.T) {
	g := toyGraph(t)
	hubs := SelectByDegree(g, 1)
	// Node 1 has the highest in-degree (5); the top out-degree is a tie
	// between nodes 3 and 4 (3 each), resolved to the smaller id 3.
	if len(hubs) != 2 || hubs[0] != 1 || hubs[1] != 3 {
		t.Errorf("hubs = %v, want [1 3]", hubs)
	}
	// Union semantics: overlapping in/out tops are not duplicated.
	all := SelectByDegree(g, 6)
	if len(all) != 6 {
		t.Errorf("B=n should select all nodes once: %v", all)
	}
	for i := 1; i < len(all); i++ {
		if all[i] <= all[i-1] {
			t.Errorf("hub list not sorted: %v", all)
		}
	}
}

func TestSelectGreedy(t *testing.T) {
	g := randomGraph(3, 60)
	cfg := bca.DefaultConfig()
	hubs, err := SelectGreedy(g, 5, cfg, 17)
	if err != nil {
		t.Fatal(err)
	}
	if len(hubs) != 5 {
		t.Fatalf("got %d hubs, want 5", len(hubs))
	}
	seen := map[graph.NodeID]bool{}
	for _, h := range hubs {
		if seen[h] {
			t.Errorf("duplicate hub %d", h)
		}
		seen[h] = true
	}
	// Deterministic for a fixed seed.
	again, err := SelectGreedy(g, 5, cfg, 17)
	if err != nil {
		t.Fatal(err)
	}
	for i := range hubs {
		if hubs[i] != again[i] {
			t.Fatalf("greedy selection not deterministic: %v vs %v", hubs, again)
		}
	}
}

func TestSelectGreedyAllNodes(t *testing.T) {
	g := toyGraph(t)
	hubs, err := SelectGreedy(g, 100, bca.DefaultConfig(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(hubs) != g.N() {
		t.Errorf("got %d hubs, want all %d", len(hubs), g.N())
	}
}

func buildOpts(omega float64) BuildOptions {
	return BuildOptions{Omega: omega, RWR: rwr.DefaultParams(), TopK: 3, Workers: 2}
}

func TestBuildMatrixUnrounded(t *testing.T) {
	g := toyGraph(t)
	m, err := Build(g, []graph.NodeID{0, 1}, buildOpts(0))
	if err != nil {
		t.Fatal(err)
	}
	if !m.IsHub(0) || !m.IsHub(1) || m.IsHub(2) {
		t.Error("hub membership wrong")
	}
	if m.NumHubs() != 2 {
		t.Errorf("NumHubs = %d", m.NumHubs())
	}
	// Scatter must reproduce the exact proximity vector.
	p := rwr.DefaultParams()
	for _, h := range []graph.NodeID{0, 1} {
		exact, err := rwr.ProximityVector(g, h, p)
		if err != nil {
			t.Fatal(err)
		}
		dst := make([]float64, g.N())
		m.ScatterHub(dst, h, 1)
		if vecmath.MaxAbsDiff(dst, exact.Vector) > 1e-9 {
			t.Errorf("hub %d scatter deviates", h)
		}
		if m.DroppedMass(h) != 0 {
			t.Errorf("unrounded build dropped mass %g", m.DroppedMass(h))
		}
		// ExactTopK matches a direct top-k of the exact vector.
		want := vecmath.TopKValues(exact.Vector, 3)
		got := m.ExactTopK(h)
		for i := range want {
			if math.Abs(want[i]-got[i]) > 1e-12 {
				t.Errorf("hub %d ExactTopK[%d] = %g, want %g", h, i, got[i], want[i])
			}
		}
	}
}

func TestBuildMatrixRounded(t *testing.T) {
	// A 400-node graph where typical proximities (≈1/n) fall below ω, so
	// rounding drops most entries and the sparse layout pays off.
	g := randomGraph(11, 400)
	omega := 5e-3
	m, err := Build(g, SelectByDegree(g, 3), buildOpts(omega))
	if err != nil {
		t.Fatal(err)
	}
	if m.Omega() != omega {
		t.Errorf("Omega = %g", m.Omega())
	}
	p := rwr.DefaultParams()
	for _, h := range m.Hubs() {
		exact, err := rwr.ProximityVector(g, h, p)
		if err != nil {
			t.Fatal(err)
		}
		dst := make([]float64, g.N())
		m.ScatterHub(dst, h, 1)
		var dropped float64
		for v := range dst {
			// Rounded entries are either exact or zero, never inflated.
			if dst[v] != 0 && math.Abs(dst[v]-exact.Vector[v]) > 1e-9 {
				t.Errorf("hub %d entry %d altered: %g vs %g", h, v, dst[v], exact.Vector[v])
			}
			if dst[v] == 0 {
				dropped += exact.Vector[v]
			}
		}
		if math.Abs(dropped-m.DroppedMass(h)) > 1e-9 {
			t.Errorf("hub %d DroppedMass = %g, recomputed %g", h, m.DroppedMass(h), dropped)
		}
		// Rounding must shrink storage on this graph.
		if m.NNZ() >= m.NumHubs()*g.N() {
			t.Error("rounding did not reduce NNZ")
		}
	}
	if m.Bytes() >= m.UnroundedBytes() {
		t.Errorf("rounded bytes %d not below unrounded %d", m.Bytes(), m.UnroundedBytes())
	}
}

func TestBuildValidation(t *testing.T) {
	g := toyGraph(t)
	if _, err := Build(g, []graph.NodeID{1, 0}, buildOpts(0)); err == nil {
		t.Error("want sorted-hubs error")
	}
	if _, err := Build(g, []graph.NodeID{99}, buildOpts(0)); err == nil {
		t.Error("want range error")
	}
	bad := buildOpts(0)
	bad.Omega = -1
	if _, err := Build(g, []graph.NodeID{0}, bad); err == nil {
		t.Error("want omega error")
	}
	bad2 := buildOpts(0)
	bad2.TopK = 0
	if _, err := Build(g, []graph.NodeID{0}, bad2); err == nil {
		t.Error("want TopK error")
	}
}

func TestScatterNonHubPanics(t *testing.T) {
	g := toyGraph(t)
	m, err := Build(g, []graph.NodeID{0}, buildOpts(0))
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Error("want panic for non-hub scatter")
		}
	}()
	m.ScatterHub(make([]float64, g.N()), 5, 1)
}

func TestPredictHubBytes(t *testing.T) {
	// Larger ω ⇒ smaller prediction; more hubs ⇒ larger prediction.
	a := PredictHubBytes(100000, 100, 1e-6, 0.76)
	b := PredictHubBytes(100000, 100, 1e-4, 0.76)
	if a <= b {
		t.Errorf("prediction not decreasing in omega: %d vs %d", a, b)
	}
	c := PredictHubBytes(100000, 200, 1e-6, 0.76)
	if c <= a {
		t.Errorf("prediction not increasing in hubs: %d vs %d", c, a)
	}
	// Degenerate parameters fall back to dense accounting.
	d := PredictHubBytes(1000, 10, 0, 0.76)
	if d != 1000*10*12 {
		t.Errorf("degenerate prediction = %d", d)
	}
	// Per-hub entries never exceed n.
	e := PredictHubBytes(100, 1, 1e-12, 0.76)
	if e > 100*12 {
		t.Errorf("per-hub cap violated: %d", e)
	}
}

func TestPredictIndexBytes(t *testing.T) {
	got := PredictIndexBytes(1000, 200, 0, 1e-6, 0.76)
	if got != 1000*200*8 {
		t.Errorf("K·n term wrong with zero hubs: %d", got)
	}
}

func TestRoundingErrorBound(t *testing.T) {
	// Monotone increasing in ω; zero at ω = 0; within [0,1].
	prev := 0.0
	for _, omega := range []float64{0, 1e-8, 1e-6, 1e-4} {
		b := RoundingErrorBound(10000, omega, 0.76)
		if b < prev-1e-12 {
			t.Errorf("bound not monotone at ω=%g: %g < %g", omega, b, prev)
		}
		if b < 0 || b > 1 {
			t.Errorf("bound out of range: %g", b)
		}
		prev = b
	}
	if RoundingErrorBound(0, 1e-6, 0.76) != 0 {
		t.Error("empty graph should bound 0")
	}
	if RoundingErrorBound(100, 1e-6, 1.5) != 1 {
		t.Error("invalid beta should return trivial bound")
	}
}

func TestRoundedMatrixDropBoundedByProposition3(t *testing.T) {
	// The realized dropped mass must not wildly exceed the Prop. 3 bound
	// computed at the graph's fitted exponent; the paper observes the
	// real error to be far below the bound. We check the realized drop is
	// below the bound with the paper's β when the bound is informative.
	g := randomGraph(23, 150)
	omega := 1e-4
	m, err := Build(g, SelectByDegree(g, 3), buildOpts(omega))
	if err != nil {
		t.Fatal(err)
	}
	bound := RoundingErrorBound(g.N(), omega, 0.76)
	for _, h := range m.Hubs() {
		if m.DroppedMass(h) > bound+0.05 {
			t.Errorf("hub %d dropped %g, Prop.3 bound %g", h, m.DroppedMass(h), bound)
		}
	}
}
