package hub

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/vecmath"
)

// Parts exposes the raw components of the matrix for serialization by the
// index layer. The returned slices share storage with the matrix.
func (m *Matrix) Parts() (n int, hubs []graph.NodeID, cols []vecmath.Sparse, exactTopK [][]float64, dropped []float64, omega float64) {
	return m.n, m.hubs, m.cols, m.exactTopK, m.droppedL1, m.omega
}

// FromParts reassembles a Matrix from serialized components (the inverse of
// Parts). It validates shape and ordering.
func FromParts(n int, hubs []graph.NodeID, cols []vecmath.Sparse, exactTopK [][]float64, dropped []float64, omega float64) (*Matrix, error) {
	if len(hubs) != len(cols) || len(hubs) != len(exactTopK) || len(hubs) != len(dropped) {
		return nil, fmt.Errorf("hub: FromParts component lengths disagree: %d hubs, %d cols, %d topK, %d dropped",
			len(hubs), len(cols), len(exactTopK), len(dropped))
	}
	m := &Matrix{
		n:         n,
		hubs:      hubs,
		pos:       make([]int32, n),
		cols:      cols,
		omega:     omega,
		exactTopK: exactTopK,
		droppedL1: dropped,
	}
	for i := range m.pos {
		m.pos[i] = -1
	}
	for i, h := range hubs {
		if int(h) < 0 || int(h) >= n {
			return nil, fmt.Errorf("hub: FromParts hub %d out of range [0,%d)", h, n)
		}
		if i > 0 && hubs[i-1] >= h {
			return nil, fmt.Errorf("hub: FromParts hub list not strictly sorted")
		}
		m.pos[h] = int32(i)
	}
	for i, c := range cols {
		if err := c.Validate(); err != nil {
			return nil, fmt.Errorf("hub: FromParts column %d: %w", i, err)
		}
		// Column entries are scattered into dense length-n vectors
		// (ScatterHub); an out-of-range index would panic there.
		if len(c.Idx) > 0 && (c.Idx[0] < 0 || int(c.Idx[len(c.Idx)-1]) >= n) {
			return nil, fmt.Errorf("hub: FromParts column %d has indices outside [0,%d)", i, n)
		}
	}
	return m, nil
}
