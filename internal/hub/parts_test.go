package hub

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/vecmath"
)

func TestPartsFromPartsRoundTrip(t *testing.T) {
	g := toyGraph(t)
	m, err := Build(g, []graph.NodeID{0, 1}, buildOpts(1e-6))
	if err != nil {
		t.Fatal(err)
	}
	n, hubs, cols, topK, dropped, omega := m.Parts()
	m2, err := FromParts(n, hubs, cols, topK, dropped, omega)
	if err != nil {
		t.Fatal(err)
	}
	if m2.NumHubs() != m.NumHubs() || m2.Omega() != m.Omega() {
		t.Error("round trip changed shape")
	}
	for _, h := range hubs {
		a := make([]float64, n)
		b := make([]float64, n)
		m.ScatterHub(a, h, 1)
		m2.ScatterHub(b, h, 1)
		if vecmath.MaxAbsDiff(a, b) != 0 {
			t.Errorf("hub %d column changed", h)
		}
		if m.DroppedMass(h) != m2.DroppedMass(h) {
			t.Errorf("hub %d dropped mass changed", h)
		}
	}
}

func TestFromPartsValidation(t *testing.T) {
	g := toyGraph(t)
	m, err := Build(g, []graph.NodeID{0, 1}, buildOpts(0))
	if err != nil {
		t.Fatal(err)
	}
	n, hubs, cols, topK, dropped, omega := m.Parts()

	if _, err := FromParts(n, hubs[:1], cols, topK, dropped, omega); err == nil {
		t.Error("want length mismatch error")
	}
	badHubs := []graph.NodeID{0, 99}
	if _, err := FromParts(n, badHubs, cols, topK, dropped, omega); err == nil {
		t.Error("want range error")
	}
	unsorted := []graph.NodeID{1, 0}
	if _, err := FromParts(n, unsorted, cols, topK, dropped, omega); err == nil {
		t.Error("want ordering error")
	}
	badCols := []vecmath.Sparse{{Idx: []int32{2, 1}, Val: []float64{1, 1}}, cols[1]}
	if _, err := FromParts(n, hubs, badCols, topK, dropped, omega); err == nil {
		t.Error("want column validation error")
	}
}

func TestScatterViaInterface(t *testing.T) {
	// Exercise the bca.HubProximities view of the matrix (ScatterHub and
	// NumHubs as used by the BCA engine).
	g := toyGraph(t)
	m, err := Build(g, []graph.NodeID{1}, buildOpts(0))
	if err != nil {
		t.Fatal(err)
	}
	if m.NumHubs() != 1 {
		t.Fatalf("NumHubs = %d", m.NumHubs())
	}
	dst := make([]float64, g.N())
	m.ScatterHub(dst, 1, 0.5)
	var sum float64
	for _, v := range dst {
		sum += v
	}
	// ‖p_h‖₁ = 1, so scattering 0.5·p_h deposits mass 0.5.
	if sum < 0.499 || sum > 0.501 {
		t.Errorf("scattered mass %g, want 0.5", sum)
	}
}
