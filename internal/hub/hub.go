// Package hub implements the hub machinery of §4.1: hub selection (the
// paper's degree-based scheme plus Berkhin's greedy scheme as a baseline),
// exact hub proximity vectors, and the rounded hub proximity matrix P_H of
// §4.1.3 together with the storage prediction of Theorem 1 and the rounding
// error bound of Proposition 3.
package hub

import (
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sort"
	"sync"

	"repro/internal/bca"
	"repro/internal/graph"
	"repro/internal/rwr"
	"repro/internal/vecmath"
)

// SelectByDegree implements the paper's hub selection (§4.1.1): the union
// of the B highest in-degree and B highest out-degree nodes. It is
// independent of graph size and hub count, unlike the greedy scheme.
func SelectByDegree[G graph.View](g G, b int) []graph.NodeID {
	seen := make(map[graph.NodeID]bool, 2*b)
	var hubs []graph.NodeID
	for _, u := range graph.TopByInDegree(g, b) {
		if !seen[u] {
			seen[u] = true
			hubs = append(hubs, u)
		}
	}
	for _, u := range graph.TopByOutDegree(g, b) {
		if !seen[u] {
			seen[u] = true
			hubs = append(hubs, u)
		}
	}
	sort.Slice(hubs, func(i, j int) bool { return hubs[i] < hubs[j] })
	return hubs
}

// SelectGreedy implements Berkhin's hub selection [7] as an ablation
// baseline: repeatedly run (hub-aware) BCA from a random start node and
// promote the non-hub node with the most retained ink to hub status, until
// `count` hubs are chosen. Deterministic for a fixed seed.
func SelectGreedy[G graph.View](g G, count int, cfg bca.Config, seed int64) ([]graph.NodeID, error) {
	if count > g.N() {
		count = g.N()
	}
	rng := rand.New(rand.NewSource(seed))
	isHub := make([]bool, g.N())
	var hubs []graph.NodeID
	ws := bca.NewWorkspace(g.N())
	marker := &hubMarker{isHub: isHub}
	for len(hubs) < count {
		start := graph.NodeID(rng.Intn(g.N()))
		st, err := bca.Run(g, start, marker, cfg, ws)
		if err != nil {
			return nil, err
		}
		// Promote the non-hub node with the most retained ink.
		best := graph.NodeID(-1)
		bestVal := -1.0
		for i, idx := range st.W.Idx {
			if !isHub[idx] && st.W.Val[i] > bestVal {
				bestVal = st.W.Val[i]
				best = graph.NodeID(idx)
			}
		}
		if best < 0 {
			// Run retained nothing new (e.g. started on a hub); pick any
			// non-hub to guarantee progress.
			for u := graph.NodeID(0); int(u) < g.N(); u++ {
				if !isHub[u] {
					best = u
					break
				}
			}
			if best < 0 {
				break
			}
		}
		isHub[best] = true
		hubs = append(hubs, best)
	}
	sort.Slice(hubs, func(i, j int) bool { return hubs[i] < hubs[j] })
	return hubs, nil
}

// hubMarker satisfies bca.HubProximities for the greedy selector, which
// only needs hub membership: ink reaching a hub is simply parked in s and
// never distributed (the selector never materializes p^t).
type hubMarker struct{ isHub []bool }

func (h *hubMarker) IsHub(v graph.NodeID) bool { return h.isHub[v] }
func (h *hubMarker) ScatterHub([]float64, graph.NodeID, float64) {
	panic("hub: greedy selector never materializes")
}
func (h *hubMarker) NumHubs() int {
	n := 0
	for _, b := range h.isHub {
		if b {
			n++
		}
	}
	return n
}

// Matrix is the hub proximity matrix P_H of Eq. 7, stored column-sparse
// after the rounding of §4.1.3 (entries < ω are dropped). It implements
// bca.HubProximities.
type Matrix struct {
	n     int
	hubs  []graph.NodeID
	pos   []int32 // node → index into cols, or -1
	cols  []vecmath.Sparse
	omega float64
	// exact holds the unrounded top-K values of each hub's proximity
	// vector, needed for the index's P̂ columns of hub nodes.
	exactTopK [][]float64
	droppedL1 []float64 // per-hub L1 mass removed by rounding
}

// BuildOptions configures hub matrix construction.
type BuildOptions struct {
	// Omega is the rounding threshold ω; proximities below it are zeroed
	// (paper default 1e-6; 0 disables rounding).
	Omega float64
	// RWR holds the power-method parameters for the exact hub vectors.
	RWR rwr.Params
	// TopK is how many exact top values per hub vector to retain for the
	// index (the K of Algorithm 1).
	TopK int
	// Workers bounds build parallelism; ≤0 selects GOMAXPROCS.
	Workers int
}

// Build computes the exact proximity vector of every hub with the power
// method (Algorithm 1 line 2), rounds it at ω, and assembles the matrix.
func Build[G graph.View](g G, hubs []graph.NodeID, opts BuildOptions) (*Matrix, error) {
	if err := opts.RWR.Validate(); err != nil {
		return nil, err
	}
	if opts.Omega < 0 {
		return nil, fmt.Errorf("hub: omega must be non-negative, got %g", opts.Omega)
	}
	if opts.TopK <= 0 {
		return nil, fmt.Errorf("hub: TopK must be positive, got %d", opts.TopK)
	}
	for i := 1; i < len(hubs); i++ {
		if hubs[i] <= hubs[i-1] {
			return nil, fmt.Errorf("hub: hub list must be strictly sorted")
		}
	}
	m := &Matrix{
		n:         g.N(),
		hubs:      append([]graph.NodeID(nil), hubs...),
		pos:       make([]int32, g.N()),
		cols:      make([]vecmath.Sparse, len(hubs)),
		omega:     opts.Omega,
		exactTopK: make([][]float64, len(hubs)),
		droppedL1: make([]float64, len(hubs)),
	}
	for i := range m.pos {
		m.pos[i] = -1
	}
	for i, h := range hubs {
		if int(h) < 0 || int(h) >= g.N() {
			return nil, fmt.Errorf("hub: node %d out of range [0,%d)", h, g.N())
		}
		m.pos[h] = int32(i)
	}

	cols := make([]int, len(hubs))
	for i := range cols {
		cols[i] = i
	}
	if err := computeColumns(m, g, cols, opts); err != nil {
		return nil, err
	}
	return m, nil
}

// computeColumns fills the given column positions of the matrix — exact
// vector via the power method, unrounded top-K, rounding at ω, dropped
// mass — across a worker pool. Build computes every column with it and
// Rebuild only the affected ones, so the two can never drift apart on the
// per-hub column format (the premise behind Rebuild's bit-for-bit reuse of
// unaffected columns). A free function because Go methods cannot carry
// type parameters.
func computeColumns[G graph.View](m *Matrix, g G, cols []int, opts BuildOptions) error {
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(cols) && len(cols) > 0 {
		workers = len(cols)
	}
	var wg sync.WaitGroup
	var mu sync.Mutex
	var firstErr error
	jobs := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				res, err := rwr.ProximityVector(g, m.hubs[i], opts.RWR)
				if err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = fmt.Errorf("hub %d: %w", m.hubs[i], err)
					}
					mu.Unlock()
					continue
				}
				m.exactTopK[i] = vecmath.TopKValues(res.Vector, opts.TopK)
				full := vecmath.GatherSparse(res.Vector, 0)
				rounded := full.Compact(opts.Omega)
				m.droppedL1[i] = full.L1() - rounded.L1()
				m.cols[i] = rounded
			}
		}()
	}
	for _, i := range cols {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	return firstErr
}

// IsHub implements bca.HubProximities. Nodes beyond the matrix's node
// range (added to the graph after the matrix was built) are never hubs.
func (m *Matrix) IsHub(v graph.NodeID) bool {
	return int(v) < len(m.pos) && m.pos[v] >= 0
}

// NumHubs implements bca.HubProximities.
func (m *Matrix) NumHubs() int { return len(m.hubs) }

// ScatterHub implements bca.HubProximities: dst += scale · p_h (rounded).
func (m *Matrix) ScatterHub(dst []float64, h graph.NodeID, scale float64) {
	p := m.pos[h]
	if p < 0 {
		panic(fmt.Sprintf("hub: node %d is not a hub", h))
	}
	m.cols[p].ScatterInto(dst, scale)
}

// Hubs returns the sorted hub node list (shared storage; do not modify).
func (m *Matrix) Hubs() []graph.NodeID { return m.hubs }

// Omega returns the rounding threshold the matrix was built with.
func (m *Matrix) Omega() float64 { return m.omega }

// ExactTopK returns the unrounded top-K proximity values of hub h,
// descending; the index uses these as the P̂ column of hub nodes.
func (m *Matrix) ExactTopK(h graph.NodeID) []float64 {
	p := m.pos[h]
	if p < 0 {
		panic(fmt.Sprintf("hub: node %d is not a hub", h))
	}
	return m.exactTopK[p]
}

// DroppedMass returns the L1 proximity mass the rounding removed from hub
// h's column — the realized counterpart of Proposition 3's bound.
func (m *Matrix) DroppedMass(h graph.NodeID) float64 {
	p := m.pos[h]
	if p < 0 {
		panic(fmt.Sprintf("hub: node %d is not a hub", h))
	}
	return m.droppedL1[p]
}

// NNZ returns the total number of stored (rounded) proximity entries.
func (m *Matrix) NNZ() int {
	total := 0
	for _, c := range m.cols {
		total += c.NNZ()
	}
	return total
}

// Bytes returns the approximate in-memory footprint of the rounded matrix
// payload, used for the Table 2 space accounting.
func (m *Matrix) Bytes() int64 {
	var b int64
	for _, c := range m.cols {
		b += c.Bytes()
	}
	return b
}

// UnroundedBytes estimates the footprint the matrix would have had without
// rounding: hubs store dense vectors in the brute-force layout (8 bytes per
// node per hub), matching Table 2's "no rounding" row.
func (m *Matrix) UnroundedBytes() int64 {
	return int64(len(m.hubs)) * int64(m.n) * 8
}

// PredictHubBytes evaluates Theorem 1's storage estimate for the hub
// proximity matrix: (1−β)^{1/β} · |H| · ω^{−1/β} · n^{1−1/β} entries, at 12
// bytes per stored entry (4-byte index + 8-byte value). β is the power-law
// exponent of sorted proximity values (the paper uses β = 0.76 after [4]).
func PredictHubBytes(n, numHubs int, omega, beta float64) int64 {
	if beta <= 0 || beta >= 1 || omega <= 0 || n == 0 {
		return int64(numHubs) * int64(n) * 12 // degenerate: no compression
	}
	perHub := math.Pow(1-beta, 1/beta) * math.Pow(omega, -1/beta) * math.Pow(float64(n), 1-1/beta)
	if perHub > float64(n) {
		perHub = float64(n)
	}
	return int64(perHub * float64(numHubs) * 12)
}

// PredictIndexBytes evaluates Theorem 1's total index estimate: O(K·n) for
// the lower-bound matrix (8 bytes per value) plus the hub matrix estimate.
func PredictIndexBytes(n, k, numHubs int, omega, beta float64) int64 {
	return int64(k)*int64(n)*8 + PredictHubBytes(n, numHubs, omega, beta)
}

// RoundingErrorBound evaluates Proposition 3: for a power-law proximity
// profile with exponent β, the L1 error that rounding at ω can introduce
// into any p^t is at most 1 − ((1−β)/(ω·n))^{1/β − 1}.
func RoundingErrorBound(n int, omega, beta float64) float64 {
	if omega <= 0 || n == 0 {
		return 0
	}
	if beta <= 0 || beta >= 1 {
		return 1
	}
	x := (1 - beta) / (omega * float64(n))
	bound := 1 - math.Pow(x, 1/beta-1)
	if bound < 0 {
		return 0
	}
	if bound > 1 {
		return 1
	}
	return bound
}

// Rebuild produces the hub matrix for an edited graph by recomputing ONLY
// the given affected hubs' proximity vectors and reusing every other hub's
// rounded column, exact top-K list and dropped-mass record from the old
// matrix. A hub is affected by an edit batch exactly when it sends
// random-walk mass through an edited source (p_h(s) > 0 for some edited
// source s) — every other hub's proximity vector is untouched by the edit,
// so recomputing it would reproduce the stored values bit for bit.
//
// Hub membership is preserved (same hubs, same order). The graph may have
// grown: new nodes are never hubs, and unaffected hubs cannot reach them
// (an edge into a new node is an edit, which would have made every hub
// reaching its source affected).
//
// The old matrix's storage may be read-only (zero-copy out of an mmap'd
// index image): Rebuild is strictly copy-on-write — reused columns are
// shared by reference, recomputed ones land in fresh slices, and nothing
// is ever written into the old matrix's backing arrays.
func Rebuild[G graph.View](g G, old *Matrix, affected []graph.NodeID, opts BuildOptions) (*Matrix, error) {
	if err := opts.RWR.Validate(); err != nil {
		return nil, err
	}
	if opts.TopK <= 0 {
		return nil, fmt.Errorf("hub: TopK must be positive, got %d", opts.TopK)
	}
	if g.N() < old.n {
		return nil, fmt.Errorf("hub: rebuild graph has %d nodes, matrix covers %d (graphs only grow)", g.N(), old.n)
	}
	m := &Matrix{
		n:         g.N(),
		hubs:      old.hubs,
		pos:       make([]int32, g.N()),
		cols:      append([]vecmath.Sparse(nil), old.cols...),
		omega:     old.omega,
		exactTopK: append([][]float64(nil), old.exactTopK...),
		droppedL1: append([]float64(nil), old.droppedL1...),
	}
	for i := range m.pos {
		m.pos[i] = -1
	}
	for i, h := range m.hubs {
		m.pos[h] = int32(i)
	}

	cols := make([]int, 0, len(affected))
	for _, h := range affected {
		p := int32(-1)
		if int(h) < len(m.pos) {
			p = m.pos[h]
		}
		if p < 0 {
			return nil, fmt.Errorf("hub: affected node %d is not a hub", h)
		}
		cols = append(cols, int(p))
	}
	if err := computeColumns(m, g, cols, opts); err != nil {
		return nil, err
	}
	return m, nil
}
