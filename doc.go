// Package repro is a from-scratch Go reproduction of "Reverse Top-k Search
// using Random Walk with Restart" (Yu, Mamoulis, Su — PVLDB 7(5), 2014).
//
// The library answers reverse top-k RWR proximity queries: given a query
// node q and an integer k, find every node u that ranks q among its k
// highest-proximity nodes under random walk with restart. See README.md
// for the package architecture, the concurrency model (engine-per-goroutine
// batching composed with intra-query worker sharding), the serving daemon
// (cmd/rtkserve: snapshot epochs, byte-accounted result caching, admission
// control), the persistence layer (checksummed index format v2 served
// zero-copy via mmap for millisecond cold starts; v1 files migrate with
// rtkindex -rewrite), the evolving-graph pipeline (graph.Overlay deltas
// behind the graph.View interface, an asynchronous journaled edit queue
// with watermarks, blast-radius-only index refreshes and background
// compaction), the sharding layer (internal/partition deterministic
// node partitioning, lbindex shard slices carrying their partition map,
// and the internal/shard scatter-gather coordinator that computes one
// PMPN, exchanges pruning bounds between rounds and merges per-shard
// decisions into the exact global answer — plus the rtkserve -shards
// HTTP fan-out over stock shard daemons), the anytime approximate tier
// (core.View.QueryAnytime: the same PMPN driven round by round through
// the screen, stopping at an (ε,δ) budget with a guaranteed ⊆ exact ⊆
// guaranteed ∪ maybe two-part answer, a residual-seeded Monte Carlo
// refinement under explicit seeds, warm-started exact escalation, and
// mode=approx serving with budget-aware cache keys — the paper's §5.3
// hits-only approximation, core.Engine.QueryApproximate, is now a thin
// wrapper over this engine), and how to run the paper experiments and
// benchmarks.
//
// The repository's cross-cutting invariants — bit-identical determinism in
// the kernels, `guarded by` lock discipline, fsync-before-acknowledge
// durability, and explicit seed provenance — are machine-checked by
// cmd/rtklint, a project-specific static-analysis suite built on
// internal/analysis (see README.md, "Static analysis & invariants"). CI
// fails on any violation; narrow exceptions carry //rtklint:ignore
// directives with written reasons.
//
// The root package carries the repository-level benchmarks (bench_test.go):
// one benchmark per table/figure of the paper plus ablations of the design
// choices (BCA propagation strategy, hub selection scheme, rounding).
package repro
