// Package repro is a from-scratch Go reproduction of "Reverse Top-k Search
// using Random Walk with Restart" (Yu, Mamoulis, Su — PVLDB 7(5), 2014).
//
// The library answers reverse top-k RWR proximity queries: given a query
// node q and an integer k, find every node u that ranks q among its k
// highest-proximity nodes under random walk with restart. See README.md
// for the architecture, DESIGN.md for the system inventory and experiment
// index, and EXPERIMENTS.md for the paper-vs-measured comparison.
//
// The root package carries the repository-level benchmarks (bench_test.go):
// one benchmark per table/figure of the paper plus ablations of the design
// choices (BCA propagation strategy, hub selection scheme, rounding).
package repro
