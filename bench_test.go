// Repository-level benchmarks: one per table/figure of the paper's
// evaluation (§5) plus ablations of the design choices. Absolute numbers
// are machine-specific; the shapes that must hold are described next to
// each benchmark (see README.md for the expected scaling shapes).
package repro

import (
	"bytes"
	"fmt"
	"io"
	"math/rand"
	"runtime"
	"sync"
	"testing"

	"repro/internal/baseline"
	"repro/internal/bca"
	"repro/internal/core"
	"repro/internal/evolve"
	"repro/internal/exp"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/hub"
	"repro/internal/lbindex"
	"repro/internal/rwr"
	"repro/internal/simrank"
	"repro/internal/workload"
)

// benchGraph lazily builds the shared benchmark graph (Web-stanford-cs
// analog at reduced scale) and its index.
var (
	benchOnce sync.Once
	benchG    *graph.Graph
	benchIdx  *lbindex.Index
)

func benchSetup(b *testing.B) (*graph.Graph, *lbindex.Index) {
	b.Helper()
	benchOnce.Do(func() {
		g, err := gen.WebGraph(2000, 11)
		if err != nil {
			panic(err)
		}
		opts := lbindex.DefaultOptions()
		opts.K = 100
		opts.HubBudget = 20
		idx, _, err := lbindex.Build(g, opts)
		if err != nil {
			panic(err)
		}
		benchG, benchIdx = g, idx
	})
	return benchG, benchIdx
}

// cloneBenchIndex gives each benchmark its own index copy so update-mode
// runs cannot leak refinements into other benchmarks.
func cloneBenchIndex(b *testing.B, idx *lbindex.Index) *lbindex.Index {
	b.Helper()
	var buf bytes.Buffer
	if err := idx.Save(&buf); err != nil {
		b.Fatal(err)
	}
	clone, err := lbindex.Load(&buf)
	if err != nil {
		b.Fatal(err)
	}
	return clone
}

// BenchmarkTable2IndexConstruction measures Algorithm 1 (LBI) on the two
// graph families of Table 2. Shape: far below the full-P build measured by
// BenchmarkTable2FullMatrix on the same graph.
func BenchmarkTable2IndexConstruction(b *testing.B) {
	for _, kind := range []string{"web", "social"} {
		b.Run(kind, func(b *testing.B) {
			spec := exp.GraphSpec{Name: kind, Nodes: 1000, Kind: kind, Seed: 11, HubBudget: 10}
			g, err := spec.Build()
			if err != nil {
				b.Fatal(err)
			}
			opts := lbindex.DefaultOptions()
			opts.K = 100
			opts.HubBudget = 10
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := lbindex.Build(g, opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTable2FullMatrix is the brute-force yardstick of Table 2's last
// column: materializing the entire proximity matrix.
func BenchmarkTable2FullMatrix(b *testing.B) {
	g, err := gen.WebGraph(1000, 11)
	if err != nil {
		b.Fatal(err)
	}
	p := rwr.DefaultParams()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := rwr.ProximityMatrix(g, p, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure5Query measures one reverse top-k query (Algorithm 4) per
// iteration across the paper's k sweep, in both index modes. Shape: mild
// growth in k; update mode amortizes refinement across iterations.
func BenchmarkFigure5Query(b *testing.B) {
	g, idx := benchSetup(b)
	queries, err := workload.Queries(g.N(), 256, 101)
	if err != nil {
		b.Fatal(err)
	}
	for _, k := range []int{5, 10, 20, 50, 100} {
		for _, update := range []bool{true, false} {
			mode := "noupdate"
			if update {
				mode = "update"
			}
			b.Run(fmt.Sprintf("k=%d/%s", k, mode), func(b *testing.B) {
				eng, err := core.NewEngine(g, cloneBenchIndex(b, idx), update)
				if err != nil {
					b.Fatal(err)
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, _, err := eng.Query(queries[i%len(queries)], k); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkFigure6Counters exposes the pruning statistics of Figure 6 as
// benchmark metrics (candidates/hits/results per query).
func BenchmarkFigure6Counters(b *testing.B) {
	g, idx := benchSetup(b)
	queries, err := workload.Queries(g.N(), 256, 202)
	if err != nil {
		b.Fatal(err)
	}
	eng, err := core.NewEngine(g, cloneBenchIndex(b, idx), true)
	if err != nil {
		b.Fatal(err)
	}
	var cand, hits, results int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, qs, err := eng.Query(queries[i%len(queries)], 10)
		if err != nil {
			b.Fatal(err)
		}
		cand += qs.Candidates
		hits += qs.Hits
		results += qs.Results
	}
	b.ReportMetric(float64(cand)/float64(b.N), "candidates/query")
	b.ReportMetric(float64(hits)/float64(b.N), "hits/query")
	b.ReportMetric(float64(results)/float64(b.N), "results/query")
}

// BenchmarkFigure7RefinementEffect compares a query against a fresh index
// versus one already refined by a prior identical query — the Fig. 7 gap.
func BenchmarkFigure7RefinementEffect(b *testing.B) {
	g, idx := benchSetup(b)
	b.Run("fresh", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			eng, err := core.NewEngine(g, cloneBenchIndex(b, idx), true)
			if err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
			if _, _, err := eng.Query(17, 100); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("refined", func(b *testing.B) {
		eng, err := core.NewEngine(g, cloneBenchIndex(b, idx), true)
		if err != nil {
			b.Fatal(err)
		}
		if _, _, err := eng.Query(17, 100); err != nil { // warm the index
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, _, err := eng.Query(17, 100); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkFigure8PerQuery compares the per-query cost of the three
// systems of Fig. 8 (build costs are what separates them; see
// BenchmarkTable2* for those).
func BenchmarkFigure8PerQuery(b *testing.B) {
	g, idx := benchSetup(b)
	p := idx.Options().RWR
	ibf, err := baseline.BuildIBF(g, 100, p, 0)
	if err != nil {
		b.Fatal(err)
	}
	fbf, err := baseline.BuildFBF(g, 100, p, 0)
	if err != nil {
		b.Fatal(err)
	}
	eng, err := core.NewEngine(g, cloneBenchIndex(b, idx), true)
	if err != nil {
		b.Fatal(err)
	}
	queries, err := workload.Queries(g.N(), 256, 303)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("ours", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := eng.Query(queries[i%len(queries)], 10); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("ibf", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := ibf.Query(queries[i%len(queries)], 10); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("fbf", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := fbf.Query(queries[i%len(queries)], 10); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkFigure9RoundingLevels measures query time against indexes built
// at the ω sweep of Fig. 9 (accuracy is covered by the exp harness; here
// the point is that rounding does not slow queries down).
func BenchmarkFigure9RoundingLevels(b *testing.B) {
	g, err := gen.WebGraph(1000, 11)
	if err != nil {
		b.Fatal(err)
	}
	for _, omega := range []float64{1e-4, 1e-5, 1e-6, 0} {
		b.Run(fmt.Sprintf("omega=%g", omega), func(b *testing.B) {
			opts := lbindex.DefaultOptions()
			opts.K = 100
			opts.HubBudget = 10
			opts.Omega = omega
			idx, _, err := lbindex.Build(g, opts)
			if err != nil {
				b.Fatal(err)
			}
			eng, err := core.NewEngine(g, idx, true)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := eng.Query(graph.NodeID(i%g.N()), 10); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSpamDetection runs the §5.4 spam study end to end (small scale).
func BenchmarkSpamDetection(b *testing.B) {
	cfg := exp.DefaultSpamConfig(1)
	cfg.MaxQueriesPerClass = 50
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := exp.RunSpamDetection(cfg, io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable3Coauthor runs the §5.4 author-popularity study end to end
// (small scale).
func BenchmarkTable3Coauthor(b *testing.B) {
	cfg := exp.Table3Config{
		Options: gen.CoauthorOptions{
			Authors: 300, Communities: 8, Prolific: 3,
			PapersPerAuthor: 6, CoauthorsPerPaper: 2, Seed: 7,
		},
		K: 5, IndexK: 20, TopN: 10, HubBudget: 6, Omega: 1e-6,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := exp.RunTable3(cfg, io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Ablation benchmarks (DESIGN.md §4) ---

// BenchmarkBCAVariants ablates the propagation strategy of §4.1.2: the
// paper's batch strategy versus classic max-residual and threshold-queue
// push, at an equal residue target. Shape: batch wins.
func BenchmarkBCAVariants(b *testing.B) {
	g, err := gen.WebGraph(2000, 11)
	if err != nil {
		b.Fatal(err)
	}
	cfg := bca.Config{Alpha: 0.15, Eta: 1e-4, Delta: 0.1, MaxIters: 1000000}
	for _, strat := range []bca.Strategy{bca.StrategyBatch, bca.StrategyMaxResidual, bca.StrategyQueue} {
		b.Run(strat.String(), func(b *testing.B) {
			ws := bca.NewWorkspace(g.N())
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := bca.RunStrategy(g, graph.NodeID(i%g.N()), bca.NoHubs, cfg, ws, strat); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkHubSelection ablates §4.1.1: the paper's degree-based selection
// versus Berkhin's greedy BCA-driven scheme. Shape: degree-based is orders
// of magnitude cheaper and independent of the hub count.
func BenchmarkHubSelection(b *testing.B) {
	g, err := gen.WebGraph(2000, 11)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("degree", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			hub.SelectByDegree(g, 20)
		}
	})
	b.Run("greedy", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := hub.SelectGreedy(g, 40, bca.DefaultConfig(), int64(i)); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkPMPNvsColumn verifies Theorem 2's cost claim: computing the
// proximities TO a node (PMPN, a row of P) costs the same O(m·iters) as
// computing the proximities FROM a node (a column of P).
func BenchmarkPMPNvsColumn(b *testing.B) {
	g, _ := benchSetup(b)
	p := rwr.DefaultParams()
	b.Run("row-pmpn", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := rwr.ProximityTo(g, graph.NodeID(i%g.N()), p); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("column-pm", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := rwr.ProximityVector(g, graph.NodeID(i%g.N()), p); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkRWRSolvers ablates the proximity-vector solvers: power method,
// Gauss-Seidel sweeps, and local forward push at equivalent accuracy.
func BenchmarkRWRSolvers(b *testing.B) {
	g, _ := benchSetup(b)
	p := rwr.DefaultParams()
	b.Run("power-method", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := rwr.ProximityVector(g, graph.NodeID(i%g.N()), p); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("gauss-seidel", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := rwr.GaussSeidel(g, graph.NodeID(i%g.N()), p); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("forward-push", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := rwr.ForwardPush(g, graph.NodeID(i%g.N()), p.Alpha, 1e-7, 1<<24); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkIntraQueryWorkers measures ONE reverse top-k query (Algorithm 4)
// at increasing intra-query worker counts on the webgraph benchmark — the
// single-query latency lever. Shape: near-linear speedup from workers=1 to
// GOMAXPROCS on multi-core machines (the PMPN matvec and the candidate scan
// both shard over node ranges); answers are identical at every setting.
func BenchmarkIntraQueryWorkers(b *testing.B) {
	g, idx := benchSetup(b)
	queries, err := workload.Queries(g.N(), 256, 909)
	if err != nil {
		b.Fatal(err)
	}
	counts := []int{1, 2, 4}
	if p := runtime.GOMAXPROCS(0); p > 4 {
		counts = append(counts, p)
	}
	for _, w := range counts {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			eng, err := core.NewEngine(g, cloneBenchIndex(b, idx), true)
			if err != nil {
				b.Fatal(err)
			}
			eng.SetWorkers(w)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := eng.Query(queries[i%len(queries)], 10); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkParallelPMPN isolates step 1 of the query: the sharded transposed
// power iteration (Algorithm 2) across worker counts.
func BenchmarkParallelPMPN(b *testing.B) {
	g, _ := benchSetup(b)
	p := rwr.DefaultParams()
	counts := []int{1, 2, 4}
	if n := runtime.GOMAXPROCS(0); n > 4 {
		counts = append(counts, n)
	}
	for _, w := range counts {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := rwr.ProximityToParallel(g, graph.NodeID(i%g.N()), p, w); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkQueryBatch measures parallel batch evaluation against one
// shared index (update mode), per query.
func BenchmarkQueryBatch(b *testing.B) {
	g, idx := benchSetup(b)
	queries, err := workload.Queries(g.N(), 64, 707)
	if err != nil {
		b.Fatal(err)
	}
	clone := cloneBenchIndex(b, idx)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		results, err := core.QueryBatch(g, clone, queries, 10, 0, true, false)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range results {
			if r.Err != nil {
				b.Fatal(r.Err)
			}
		}
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*len(queries)), "ns/query")
}

// BenchmarkEvolveRefresh measures incremental maintenance (θ=1e-4)
// against the from-scratch rebuild on the same edit batch.
func BenchmarkEvolveRefresh(b *testing.B) {
	g, err := gen.WebGraph(1000, 11)
	if err != nil {
		b.Fatal(err)
	}
	opts := lbindex.DefaultOptions()
	opts.K = 100
	opts.HubBudget = 10
	built, _, err := lbindex.Build(g, opts)
	if err != nil {
		b.Fatal(err)
	}
	edits := []evolve.Edit{{From: 3, To: 900}, {From: 500, To: 7}}
	g2, err := evolve.ApplyEdits(g, edits, graph.DanglingSelfLoop)
	if err != nil {
		b.Fatal(err)
	}
	affected, err := evolve.AffectedOrigins(g2, evolve.Sources(edits), 1e-4, opts.RWR)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("refresh", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			idx := cloneBenchIndexOf(b, built)
			b.StartTimer()
			if _, err := evolve.Refresh(g2, idx, affected); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("rebuild", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := lbindex.Build(g2, opts); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func cloneBenchIndexOf(b *testing.B, idx *lbindex.Index) *lbindex.Index {
	b.Helper()
	var buf bytes.Buffer
	if err := idx.Save(&buf); err != nil {
		b.Fatal(err)
	}
	clone, err := lbindex.Load(&buf)
	if err != nil {
		b.Fatal(err)
	}
	return clone
}

// BenchmarkSimRank measures the dense SimRank fixed point (future-work
// substrate; O(I·n²·d²)).
func BenchmarkSimRank(b *testing.B) {
	g, err := gen.Copying(300, 4, 0.7, 0.2, 99)
	if err != nil {
		b.Fatal(err)
	}
	p := simrank.DefaultParams()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := simrank.Compute(g, p); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkUpperBound measures Algorithm 3 alone (it must be O(k), trivial
// next to everything else).
func BenchmarkUpperBound(b *testing.B) {
	phat := make([]float64, 200)
	v := 1.0
	for i := range phat {
		v *= 0.97
		phat[i] = v
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.UpperBound(phat, 100, 0.05)
	}
}

// BenchmarkIndexSaveLoad measures (de)serialization of the index.
func BenchmarkIndexSaveLoad(b *testing.B) {
	_, idx := benchSetup(b)
	var buf bytes.Buffer
	if err := idx.Save(&buf); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	b.Run("save", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			var out bytes.Buffer
			if err := idx.Save(&out); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("load", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := lbindex.Load(bytes.NewReader(data)); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkOverlayApply measures the tentpole claim of the overlay layer:
// applying a small edit batch as a delta (graph.Overlay.Apply, O(edits))
// against the full CSR rebuild (evolve.ApplyEdits, O(N+M)) on a ≥100k-edge
// graph. The expected shape is a ≥50× gap that widens with graph size; the
// overlay/rebuild answer equivalence is enforced by the differential suite
// in internal/evolve, and by rtkbench -exp evolve -json which records both
// timings plus an oracle check in BENCH_evolve.json.
func BenchmarkOverlayApply(b *testing.B) {
	g, err := gen.RMAT(14, 8, 0.57, 0.19, 0.19, 0.05, 404) // 16384 nodes, ~131k edges
	if err != nil {
		b.Fatal(err)
	}
	edits := overlayBenchBatch(g, 10, 505)
	b.Logf("graph: n=%d m=%d, batch=%d edits", g.N(), g.M(), len(edits))
	b.Run("overlay", func(b *testing.B) {
		o := graph.NewOverlay(g)
		for i := 0; i < b.N; i++ {
			if _, err := o.Apply(edits); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("rebuild", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := evolve.ApplyEdits(g, edits, graph.DanglingSelfLoop); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("compact", func(b *testing.B) {
		o := graph.NewOverlay(g)
		o, err := o.Apply(edits)
		if err != nil {
			b.Fatal(err)
		}
		for i := 0; i < b.N; i++ {
			if _, err := o.Compact(); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkOverlayPMPN compares the sharded PMPN matvec on a pure CSR
// against the same graph behind a 10-edit overlay and behind the generic
// interface path — the "no regression on the pure-CSR path" guard for the
// View abstraction (the csr series must match BenchmarkParallelPMPN, and
// the overlay series should sit within a few percent of it).
func BenchmarkOverlayPMPN(b *testing.B) {
	g, err := gen.WebGraph(4000, 11)
	if err != nil {
		b.Fatal(err)
	}
	edits := overlayBenchBatch(g, 10, 606)
	o := graph.NewOverlay(g)
	o, err = o.Apply(edits)
	if err != nil {
		b.Fatal(err)
	}
	g2, err := evolve.ApplyEdits(g, edits, graph.DanglingSelfLoop)
	if err != nil {
		b.Fatal(err)
	}
	p := rwr.DefaultParams()
	workers := runtime.GOMAXPROCS(0)
	b.Run("csr", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := rwr.ProximityToParallel(g2, graph.NodeID(i%g2.N()), p, workers); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("overlay", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := rwr.ProximityToParallel(o, graph.NodeID(i%o.N()), p, workers); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("generic", func(b *testing.B) {
		// A wrapper whose dynamic type is neither *graph.Graph nor
		// *graph.Overlay: the kernels' type switch cannot unwrap it, so
		// this genuinely measures the generic fallback loops.
		v := opaqueView{o}
		for i := 0; i < b.N; i++ {
			if _, err := rwr.ProximityToParallel(v, graph.NodeID(i%v.N()), p, workers); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// opaqueView hides the concrete view type from the kernels' type switch,
// forcing the generic fallback path (what an out-of-tree View would hit).
type opaqueView struct{ graph.View }

// overlayBenchBatch builds a mixed insert/remove batch against g.
func overlayBenchBatch(g *graph.Graph, size int, seed int64) []evolve.Edit {
	rng := rand.New(rand.NewSource(seed))
	var edits []evolve.Edit
	seen := map[[2]graph.NodeID]bool{}
	for len(edits) < size {
		u := graph.NodeID(rng.Intn(g.N()))
		if rng.Intn(2) == 0 && g.OutDegree(u) > 1 {
			nbrs := g.OutNeighbors(u)
			v := nbrs[rng.Intn(len(nbrs))]
			if seen[[2]graph.NodeID{u, v}] {
				continue
			}
			seen[[2]graph.NodeID{u, v}] = true
			edits = append(edits, evolve.Edit{From: u, To: v, Remove: true})
		} else {
			v := graph.NodeID(rng.Intn(g.N()))
			if u == v || g.HasEdge(u, v) || seen[[2]graph.NodeID{u, v}] {
				continue
			}
			seen[[2]graph.NodeID{u, v}] = true
			edits = append(edits, evolve.Edit{From: u, To: v})
		}
	}
	return edits
}
