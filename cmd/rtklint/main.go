// Command rtklint is the repo's own multichecker: it machine-checks the
// determinism, locking and durability invariants the reproduction's
// correctness rests on, using project-specific analyzers no general
// linter ships. Run it as
//
//	go run ./cmd/rtklint ./...
//
// from the module root; it exits nonzero if any invariant is violated.
// CI runs it on every push. See README.md ("Static analysis &
// invariants") for what each analyzer enforces and why, and
// //rtklint:ignore for the (reason-required) suppression syntax.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/analysis"
	"repro/internal/analysis/rtklint"
)

func main() {
	var (
		only = flag.String("only", "", "comma-separated analyzer names to run (default: all)")
		list = flag.Bool("list", false, "list the analyzers and exit")
	)
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: rtklint [-only a,b] [-list] [packages]\n\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	suite := rtklint.Suite()
	if *list {
		for _, s := range suite {
			fmt.Printf("%-12s %s\n", s.Analyzer.Name, s.Analyzer.Doc)
		}
		return
	}
	suite = analysis.Only(suite, *only)
	if len(suite) == 0 {
		fmt.Fprintf(os.Stderr, "rtklint: -only %q matches no analyzer\n", *only)
		os.Exit(2)
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	wd, err := os.Getwd()
	if err != nil {
		fmt.Fprintf(os.Stderr, "rtklint: %v\n", err)
		os.Exit(2)
	}
	findings, err := rtklint.Run(wd, suite, patterns)
	if err != nil {
		fmt.Fprintf(os.Stderr, "rtklint: %v\n", err)
		os.Exit(2)
	}
	for _, f := range findings {
		fmt.Println(f)
	}
	if len(findings) > 0 {
		os.Exit(1)
	}
}
