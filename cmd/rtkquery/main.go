// Command rtkquery evaluates reverse top-k RWR queries (Algorithm 4)
// against a graph and a prebuilt index, printing the answer set and the
// per-query statistics of §5.3. With -update and -save, refinements made
// during query processing are persisted back into the index file.
//
// Usage:
//
//	rtkquery -graph web.txt -index web.idx -q 42 -k 10
//	rtkquery -graph web.txt -index web.idx -q 42 -k 10 -update -save
//	rtkquery -graph web.txt -index web.idx -q 42 -k 10 -workers 0   # one query, all cores
//	rtkquery -graph web.txt -index web.idx -q 42 -k 10 -mode approx -eps 0.1 -delta 0.001
//	rtkquery -graph web.txt -shards web.idx.shard0of2,web.idx.shard1of2 -q 42 -k 10
//
// With -mode approx, the anytime (ε,δ) tier answers with a guaranteed part
// and a maybe part instead of refining to an exact answer; eps bounds the
// undecided fraction and delta (optional) enables the Monte Carlo stage.
//
// With -shards, the comma-separated shard-slice files (rtkindex -partition)
// are queried through the in-process scatter-gather coordinator: one shared
// PMPN, per-shard candidate decisions, cross-shard bound pruning — and an
// answer bit-identical to the unsharded one.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"sort"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/lbindex"
	"repro/internal/serve"
	"repro/internal/shard"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("rtkquery: ")
	var (
		graphPath = flag.String("graph", "", "edge-list path (required)")
		indexPath = flag.String("index", "", "index path (required unless -shards is given)")
		shards    = flag.String("shards", "", "comma-separated shard-slice index files: query via the in-process coordinator")
		q         = flag.Int("q", -1, "query node (required)")
		k         = flag.Int("k", 10, "query k")
		workers   = flag.Int("workers", 1, "intra-query worker count (0 = all cores); answers are identical at any setting")
		update    = flag.Bool("update", false, "refine the in-memory index during the query")
		save      = flag.Bool("save", false, "write the refined index back (implies -update)")
		mmapMode  = flag.String("mmap", "on", "load a v2 index zero-copy via mmap: on|off (off = portable heap load)")
		approx    = flag.Bool("approx", false, "hits-only approximate mode (§5.3): no refinement, subset answer")
		explain   = flag.Bool("explain", false, "print the per-candidate decision trace instead of running the query")
		mode      = flag.String("mode", "", "query tier: exact (default) or approx — the anytime (ε,δ) tier")
		eps       = flag.String("eps", "", "anytime undecided-fraction budget in [0,1); default 0.1 (needs -mode approx)")
		delta     = flag.String("delta", "", "anytime Monte Carlo failure budget in [0,0.5]; default 0 (needs -mode approx)")
		mcSeed    = flag.Int64("seed", 0, "anytime Monte Carlo seed (used when delta > 0)")
	)
	flag.Parse()
	// Same shared validator as the rtkserve HTTP handler: same inputs, same
	// rejections, same messages.
	anytime, epsV, deltaV, perr := serve.ParseApproxParams(*mode, *eps, *delta)
	if perr != nil {
		log.Fatal(perr)
	}
	if anytime && (*update || *save || *approx || *explain) {
		log.Fatal("-mode approx is incompatible with -update/-save/-approx/-explain")
	}
	if *graphPath == "" || (*indexPath == "" && *shards == "") || *q < 0 {
		log.Fatal("-graph, -q and one of -index/-shards are required")
	}
	if *indexPath != "" && *shards != "" {
		log.Fatal("-index and -shards are mutually exclusive")
	}
	if *save {
		*update = true
	}

	gf, err := os.Open(*graphPath)
	if err != nil {
		log.Fatal(err)
	}
	builder, err := graph.ReadEdgeList(gf)
	gf.Close()
	if err != nil {
		log.Fatal(err)
	}
	g, _, err := builder.Build(graph.DanglingSelfLoop)
	if err != nil {
		log.Fatal(err)
	}

	useMmap, err := lbindex.ParseMmapMode(*mmapMode)
	if err != nil {
		log.Fatal(err)
	}
	if *shards != "" {
		if *update || *save || *approx || *explain {
			log.Fatal("-shards supports plain queries only (no -update/-save/-approx/-explain)")
		}
		if anytime && deltaV != 0 {
			log.Fatal("-shards -mode approx is deterministic only (delta must be unset)")
		}
		querySharded(g, strings.Split(*shards, ","), *q, *k, *workers, useMmap, anytime, epsV)
		return
	}
	idx, err := lbindex.LoadFile(*indexPath, lbindex.LoadOptions{Mmap: useMmap})
	if err != nil {
		log.Fatal(err)
	}
	// An index built with rtkindex -relabel stores its rows in the permuted
	// (internal) space; permute the loaded graph to match and translate the
	// query/answer at this boundary, so the command still speaks the edge-list
	// file's external identifiers.
	if perm := idx.Relabeling(); perm != nil {
		full, err := perm.Extend(g.N())
		if err != nil {
			log.Fatal(err)
		}
		if g, err = graph.ApplyPermutation(g, full); err != nil {
			log.Fatal(err)
		}
	}

	// Reject bad parameters exactly like the rtkserve HTTP handler does —
	// same helper, same message.
	if perr := serve.ValidateQueryParams(*q, *k, g.N(), idx.K()); perr != nil {
		log.Fatal(perr)
	}

	if anytime {
		view, err := core.NewView(g, idx)
		if err != nil {
			log.Fatal(err)
		}
		res, err := view.QueryAnytime(graph.NodeID(*q), *k, core.AnytimeOptions{Eps: epsV, Delta: deltaV, Seed: *mcSeed}, *workers)
		if err != nil {
			log.Fatal(err)
		}
		s := res.Stats
		fmt.Printf("anytime reverse top-%d of node %d (eps=%g delta=%g):\n", *k, *q, epsV, deltaV)
		fmt.Printf("guaranteed (%d): %v\n", len(res.Guaranteed), res.Guaranteed)
		fmt.Printf("maybe (%d): %v\n", len(res.Maybe), res.Maybe)
		fmt.Printf("stats: eps_achieved=%.4f tau=%.3g rounds=%d converged=%v confirmed=%d pruned=%d mc_confirmed=%d mc_pruned=%d mc_walks=%d\n",
			s.EpsAchieved, s.TauAchieved, s.Rounds, s.Converged,
			s.ConfirmedByBound, s.PrunedByBound, s.MCConfirmed, s.MCPruned, s.MCWalks)
		fmt.Printf("time: total=%v pmpn=%v mc=%v (%d PMPN iterations)\n",
			s.Elapsed.Round(time.Microsecond), s.PMPNElapsed.Round(time.Microsecond),
			s.MCElapsed.Round(time.Microsecond), s.PMPNIters)
		return
	}

	eng, err := core.NewEngine(g, idx, *update)
	if err != nil {
		log.Fatal(err)
	}
	eng.SetWorkers(*workers)
	if *explain {
		ex, err := eng.Explain(idx.ToInternal(graph.NodeID(*q)), *k, false)
		if err != nil {
			log.Fatal(err)
		}
		if idx.Relabeling() != nil {
			ex.Query = graph.NodeID(*q)
			ex.Stats.Query = graph.NodeID(*q)
			for i := range ex.Decisions {
				ex.Decisions[i].Node = idx.ToExternal(ex.Decisions[i].Node)
			}
			sort.Slice(ex.Decisions, func(i, j int) bool { return ex.Decisions[i].Node < ex.Decisions[j].Node })
		}
		if err := core.WriteExplanation(os.Stdout, ex); err != nil {
			log.Fatal(err)
		}
		return
	}

	query := eng.Query
	if *approx {
		query = eng.QueryApproximate
	}
	answer, stats, err := query(idx.ToInternal(graph.NodeID(*q)), *k)
	if err != nil {
		log.Fatal(err)
	}
	if idx.Relabeling() != nil {
		stats.Query = graph.NodeID(*q)
		for i := range answer {
			answer[i] = idx.ToExternal(answer[i])
		}
		sort.Slice(answer, func(i, j int) bool { return answer[i] < answer[j] })
	}

	fmt.Printf("reverse top-%d of node %d: %d nodes\n", *k, *q, len(answer))
	fmt.Printf("%v\n", answer)
	fmt.Printf("stats: candidates=%d hits=%d refine_steps=%d exact_fallbacks=%d committed=%d\n",
		stats.Candidates, stats.Hits, stats.RefineSteps, stats.ExactFallbacks, stats.Committed)
	fmt.Printf("time: total=%v%s (%d PMPN iterations)\n",
		stats.Elapsed.Round(time.Microsecond), formatPhases(stats.Phases()), stats.PMPNIters)

	if *save {
		if err := idx.SaveFile(*indexPath); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("saved refined index (%d refinement commits total)\n", idx.Refinements())
	}
}

// formatPhases renders a QueryStats phase map as " pmpn=… decide=…" in a
// fixed phase order, so repeated runs diff cleanly.
func formatPhases(phases map[string]time.Duration) string {
	var b strings.Builder
	for _, name := range []string{"pmpn", "decide", "fallback", "mc"} {
		if d, ok := phases[name]; ok {
			fmt.Fprintf(&b, " %s=%v", name, d.Round(time.Microsecond))
		}
	}
	return b.String()
}

// querySharded loads the shard-slice files and answers the query through
// the in-process scatter-gather coordinator — exactly (anytime = false) or
// under the anytime eps budget (anytime = true).
func querySharded(g *graph.Graph, paths []string, q, k, workers int, useMmap, anytime bool, eps float64) {
	if workers <= 0 {
		// Same convention as the unsharded path: 0 means all cores (the
		// coordinator's own ≤0 default would mean "one per shard").
		workers = runtime.GOMAXPROCS(0)
	}
	slices := make([]*lbindex.Index, len(paths))
	for i, path := range paths {
		idx, err := lbindex.LoadFile(strings.TrimSpace(path), lbindex.LoadOptions{Mmap: useMmap})
		if err != nil {
			log.Fatal(err)
		}
		slices[i] = idx
	}
	// Slices of a relabeled index carry the build-time permutation; permute
	// the loaded graph to match (the coordinator validates the slices agree
	// and translates q/answers itself).
	if perm := slices[0].Relabeling(); perm != nil {
		full, err := perm.Extend(g.N())
		if err != nil {
			log.Fatal(err)
		}
		if g, err = graph.ApplyPermutation(g, full); err != nil {
			log.Fatal(err)
		}
	}
	c, err := shard.NewInProc(g, slices, shard.Config{Workers: workers})
	if err != nil {
		log.Fatal(err)
	}
	if perr := serve.ValidateQueryParams(q, k, g.N(), c.MaxK()); perr != nil {
		log.Fatal(perr)
	}
	if anytime {
		guaranteed, maybe, stats, err := c.QueryAnytime(graph.NodeID(q), k, eps)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("anytime reverse top-%d of node %d (eps=%g):\n", k, q, eps)
		fmt.Printf("guaranteed (%d): %v\n", len(guaranteed), guaranteed)
		fmt.Printf("maybe (%d): %v\n", len(maybe), maybe)
		fmt.Printf("shards: P=%d rounds=%d eps_achieved=%.4f pruned_by_bound=%d confirmed_by_bound=%d early_stop=%v\n",
			c.P(), stats.Rounds, stats.EpsAchieved, stats.PrunedByBound, stats.ConfirmedByBound, stats.EarlyStop)
		fmt.Printf("time: total=%v pmpn=%v (%d PMPN iterations)\n",
			stats.Elapsed.Round(time.Microsecond), stats.PMPNElapsed.Round(time.Microsecond), stats.PMPNIters)
		return
	}
	answer, stats, err := c.Query(graph.NodeID(q), k)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("reverse top-%d of node %d: %d nodes\n", k, q, len(answer))
	fmt.Printf("%v\n", answer)
	fmt.Printf("shards: P=%d rounds=%d pruned_by_bound=%d confirmed_by_bound=%d survivors=%d early_stop=%v\n",
		c.P(), stats.Rounds, stats.PrunedByBound, stats.ConfirmedByBound, stats.Survivors, stats.EarlyStop)
	fmt.Printf("time: total=%v pmpn=%v (%d PMPN iterations)\n",
		stats.Elapsed.Round(time.Microsecond), stats.PMPNElapsed.Round(time.Microsecond), stats.PMPNIters)
}
