// Command rtkserve is the long-lived reverse top-k query daemon: it loads
// (or builds) the lower-bound index once and serves queries over HTTP from
// a shared snapshot, refreshing the snapshot in place as graph edits
// arrive. See the README's "Serving" section for the architecture.
//
// Usage:
//
//	rtkserve -graph web.txt -index web.idx -addr :7471
//	rtkserve -graph web.txt -index web.idx -mmap=off         # portable heap load
//	rtkserve -graph web.txt -K 50 -B 20 -addr 127.0.0.1:0   # build the index at startup
//	rtkserve -graph web.txt -index web.idx -spmm-batch 32    # wider SpMM query batching
//
// Concurrent queries that miss the cache coalesce into SpMM proximity
// groups (up to -spmm-batch wide, after waiting at most -spmm-window for
// companions): the group's proximity columns advance in one slab, sharing
// every CSR traversal, and each query still returns — and frees its
// admission slot — the moment its own column is decided. Answers are
// bit-identical to unbatched ones. An index built with rtkindex -relabel
// is served transparently: the daemon permutes the loaded graph to the
// index's stored cache-aware layout and translates identifiers at the API
// boundary.
//
// Format-v2 index files are served zero-copy from an mmap'd image by
// default, making daemon cold start a matter of mapping and checksum
// verification instead of a full parse; -mmap=off is the portable escape
// hatch. See the README's "Persistence & cold start" section.
//
// Endpoints:
//
//	GET  /v1/reverse-topk?q=<node>&k=<k>
//	GET  /v1/stats
//	GET  /metrics                        Prometheus text exposition
//	GET  /debug/slowlog?threshold=250ms  slow-query ring, newest first
//	GET  /healthz
//	POST /v1/edits        {"edits":[{"from":1,"to":2},{"from":3,"to":4,"remove":true}],"theta":0}
//
// Observability: the daemon emits one structured (JSON or logfmt-style
// text) log line per request, carrying the X-RTK-Request-ID correlation
// header that the fan-out coordinator stamps on every proxied shard call —
// grep one ID across daemons to follow a query through the topology. Pass
// -debug-addr to expose net/http/pprof on a separate (private) listener.
// See the README's "Observability" section.
//
// Edits are asynchronous by default: the POST returns 202 with a journal
// watermark and a single maintenance goroutine applies batches to the graph
// overlay in the background (queries never block); pass "wait":true in the
// body for synchronous edit-then-read semantics. Track progress via
// /v1/stats (applied_watermark, overlay_delta_edges, compactions).
// Edit weights must be finite, non-negative and — when nonzero — at least
// graph.MinNormalWeight: smaller weights are rejected with 400, because a
// subnormal out-weight normalizer's reciprocal overflows to +Inf and
// NaN-poisons proximity scores (weight 0 on an insert means the default
// weight 1).
//
// On SIGTERM/SIGINT the daemon drains gracefully: /healthz flips to 503,
// the listener stops accepting, in-flight requests finish (bounded by
// -drain), then the process exits 0 — with every acknowledged edit batch
// applied, never failed.
//
// With -journal the daemon is durable: each accepted edit batch is framed,
// checksummed and fsync'd to a write-ahead journal BEFORE its 202
// watermark is returned, and on startup the journal is replayed (any torn
// final record truncated away) on top of the newest checkpoint, so even
// kill -9 loses no acknowledged batch. Pair with -checkpoint-dir to bound
// replay time: the daemon periodically saves the served (graph, index)
// pair and truncates the journal at the checkpointed watermark. See the
// README's "Durability & crash recovery" section.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/graph"
	"repro/internal/lbindex"
	"repro/internal/serve"
)

// buildLogger constructs the structured request logger, writing to stderr
// alongside the daemon's operational log.
func buildLogger(format string) (*slog.Logger, error) {
	switch format {
	case "text":
		return slog.New(slog.NewTextHandler(os.Stderr, nil)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(os.Stderr, nil)), nil
	case "off":
		return nil, nil
	}
	return nil, fmt.Errorf("-log must be text, json or off (got %q)", format)
}

// startDebugServer exposes net/http/pprof on its own listener so profiling
// never shares a port with the public query API. The default mux is
// deliberately not used: the pprof handlers are mounted explicitly on a
// private mux bound to the (ideally loopback) debug address.
func startDebugServer(addr string) {
	if addr == "" {
		return
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		log.Fatalf("debug listener: %v", err)
	}
	log.Printf("pprof on http://%s/debug/pprof/", ln.Addr())
	go func() {
		if err := http.Serve(ln, mux); err != nil {
			log.Printf("debug server stopped: %v", err)
		}
	}()
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("rtkserve: ")
	var (
		graphPath    = flag.String("graph", "", "edge-list path (required unless -shards is given)")
		indexPath    = flag.String("index", "", "prebuilt index path (omit to build at startup); may be a shard-slice file")
		shards       = flag.String("shards", "", "comma-separated shard daemon URLs: run as a fan-out coordinator (no graph/index loaded)")
		addr         = flag.String("addr", ":7471", "listen address")
		k            = flag.Int("K", 200, "maximum supported query k when building the index")
		b            = flag.Int("B", 100, "hub budget when building the index")
		cacheBytes   = flag.Int64("cache-bytes", serve.DefaultCacheBytes, "result cache budget in bytes (negative disables caching)")
		mmapMode     = flag.String("mmap", "on", "serve a v2 index zero-copy from the mapped file: on|off (off = portable heap load)")
		maxInflight  = flag.Int("max-inflight", 0, "max concurrent engine computations (0 = 4×GOMAXPROCS)")
		workers      = flag.Int("workers", 0, "total intra-query worker budget (0 = GOMAXPROCS)")
		spmmBatch    = flag.Int("spmm-batch", 0, "max concurrent queries coalesced into one SpMM proximity group (0 = default 16; 1 or negative disables batching)")
		spmmWindow   = flag.Duration("spmm-window", 0, "how long an under-filled SpMM group waits for companions before firing (0 = default 1ms)")
		drain        = flag.Duration("drain", 15*time.Second, "graceful drain timeout on SIGTERM")
		compactAfter = flag.Int("compact-after", 0, "overlay delta edges before background compaction (0 = max(4096, M/8), negative disables)")

		journalPath = flag.String("journal", "", "write-ahead edit journal path: fsync every accepted batch before acknowledging it, replay on startup (empty = volatile)")
		ckptDir     = flag.String("checkpoint-dir", "", "checkpoint directory: periodically save the served pair and truncate the journal (requires -journal; empty = journal grows unbounded)")
		ckptBytes   = flag.Int64("checkpoint-bytes", 0, "checkpoint once the journal exceeds this many bytes (0 = 64 MiB, negative disables the size trigger)")
		ckptBatches = flag.Int("checkpoint-batches", 0, "checkpoint once the journal holds this many batches (0 = 1024, negative disables the count trigger)")
		noSync      = flag.Bool("journal-no-sync", false, "skip the per-append fsync (benchmark escape hatch: a machine crash may lose recent acknowledgements)")

		logFormat     = flag.String("log", "text", "structured request log format: text|json|off")
		debugAddr     = flag.String("debug-addr", "", "private listen address for net/http/pprof (empty disables; never expose publicly)")
		slowCapacity  = flag.Int("slowlog-capacity", 0, "slow-query ring capacity (0 = 256, negative disables)")
		slowThreshold = flag.Duration("slowlog-threshold", 0, "record queries at least this slow (0 = 250ms, negative records all)")
	)
	flag.Parse()
	logger, err := buildLogger(*logFormat)
	if err != nil {
		log.Fatal(err)
	}
	startDebugServer(*debugAddr)
	if *shards != "" {
		// Coordinator mode holds no graph, index or cache; any serving
		// flag alongside -shards is a mixed-up command line, not a request
		// we can half-honor.
		if *graphPath != "" || *indexPath != "" {
			log.Fatal("-shards runs a pure coordinator: -graph/-index belong on the shard daemons")
		}
		runCoordinator(strings.Split(*shards, ","), *addr, *drain, logger)
		return
	}
	if *graphPath == "" {
		log.Fatal("-graph is required (or -shards for coordinator mode)")
	}
	if *journalPath == "" && *ckptDir != "" {
		log.Fatal("-checkpoint-dir needs -journal: checkpoints exist to truncate the journal")
	}

	gf, err := os.Open(*graphPath)
	if err != nil {
		log.Fatal(err)
	}
	builder, err := graph.ReadEdgeList(gf)
	gf.Close()
	if err != nil {
		log.Fatal(err)
	}
	g, _, err := builder.Build(graph.DanglingSelfLoop)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("graph: %s", graph.ComputeStats(g))

	var idx *lbindex.Index
	if *indexPath != "" {
		useMmap, err := lbindex.ParseMmapMode(*mmapMode)
		if err != nil {
			log.Fatal(err)
		}
		start := time.Now()
		idx, err = lbindex.LoadFile(*indexPath, lbindex.LoadOptions{Mmap: useMmap})
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("index: loaded %s in %v (K=%d, %d refinement commits, mmap=%v)",
			*indexPath, time.Since(start).Round(time.Microsecond), idx.K(), idx.Refinements(), idx.MmapBacked())
		// An index built under a cache-aware relabeling stores its graph in
		// the permuted (internal) space; the edge-list file speaks external
		// ids. Permute the loaded graph to match — identifiers added after
		// the build keep identity labels, so a grown graph pads the stored
		// permutation rather than failing.
		if perm := idx.Relabeling(); perm != nil {
			full, err := perm.Extend(g.N())
			if err != nil {
				log.Fatal(err)
			}
			pg, err := graph.ApplyPermutation(g, full)
			if err != nil {
				log.Fatal(err)
			}
			g = pg
			log.Printf("relabel: applied the index's stored permutation (%d nodes)", len(perm))
		}
	} else {
		opts := lbindex.DefaultOptions()
		opts.K = *k
		opts.HubBudget = *b
		start := time.Now()
		var stats lbindex.BuildStats
		idx, stats, err = lbindex.Build(g, opts)
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("index: built in %v (%d hubs, %d B)", time.Since(start).Round(time.Millisecond), stats.HubCount, stats.Bytes)
	}

	cfg := serve.Config{
		CacheBytes:       *cacheBytes,
		MaxInflight:      *maxInflight,
		WorkerBudget:     *workers,
		CompactAfter:     *compactAfter,
		SpMMBatch:        *spmmBatch,
		SpMMWindow:       *spmmWindow,
		Logger:           logger,
		SlowLogCapacity:  *slowCapacity,
		SlowLogThreshold: *slowThreshold,
	}
	var srv *serve.Server
	if *journalPath != "" {
		start := time.Now()
		var info *serve.RecoveryInfo
		srv, info, err = serve.NewDurable(g, idx, cfg, serve.DurabilityConfig{
			JournalPath:       *journalPath,
			CheckpointDir:     *ckptDir,
			CheckpointBytes:   *ckptBytes,
			CheckpointBatches: *ckptBatches,
			NoSync:            *noSync,
		})
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("journal: %s recovered in %v (checkpoint watermark %d, %d replayed, %d skipped, %d torn bytes dropped)",
			*journalPath, time.Since(start).Round(time.Microsecond),
			info.CheckpointWatermark, info.Replayed, info.SkippedBelowCheckpoint, info.DroppedBytes)
		if info.TailError != "" {
			log.Printf("journal: torn tail truncated: %s", info.TailError)
		}
	} else {
		srv, err = serve.New(g, idx, cfg)
		if err != nil {
			log.Fatal(err)
		}
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	httpSrv := &http.Server{Handler: srv.Handler()}

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, syscall.SIGTERM, syscall.SIGINT)
	drained := make(chan struct{})
	go func() {
		sig := <-sigCh
		log.Printf("received %v: draining (timeout %v)", sig, *drain)
		srv.StartDrain()
		ctx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		if err := httpSrv.Shutdown(ctx); err != nil {
			log.Printf("drain incomplete: %v", err)
		}
		close(drained)
	}()

	log.Printf("listening on %s", ln.Addr())
	if err := httpSrv.Serve(ln); !errors.Is(err, http.ErrServerClosed) {
		log.Fatal(err)
	}
	<-drained
	srv.Close()
	log.Printf("drained; bye")
}

// runCoordinator serves the fan-out coordinator: same routes, no resident
// graph or index — every query scatters to the shard daemons and the
// disjoint answers merge into the exact global answer. See the README's
// "Sharded serving" section for the topology.
func runCoordinator(shardURLs []string, addr string, drain time.Duration, logger *slog.Logger) {
	fan, err := serve.NewFanout(serve.FanoutConfig{Shards: shardURLs, Logger: logger})
	if err != nil {
		log.Fatal(err)
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		log.Fatal(err)
	}
	httpSrv := &http.Server{Handler: fan.Handler()}
	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, syscall.SIGTERM, syscall.SIGINT)
	drained := make(chan struct{})
	go func() {
		sig := <-sigCh
		log.Printf("received %v: draining coordinator (timeout %v)", sig, drain)
		ctx, cancel := context.WithTimeout(context.Background(), drain)
		defer cancel()
		if err := httpSrv.Shutdown(ctx); err != nil {
			log.Printf("drain incomplete: %v", err)
		}
		close(drained)
	}()
	log.Printf("coordinating %d shards: %s", len(fan.Shards()), strings.Join(fan.Shards(), ", "))
	log.Printf("listening on %s", ln.Addr())
	if err := httpSrv.Serve(ln); !errors.Is(err, http.ErrServerClosed) {
		log.Fatal(err)
	}
	<-drained
	log.Printf("drained; bye")
}
