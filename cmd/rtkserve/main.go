// Command rtkserve is the long-lived reverse top-k query daemon: it loads
// (or builds) the lower-bound index once and serves queries over HTTP from
// a shared snapshot, refreshing the snapshot in place as graph edits
// arrive. See the README's "Serving" section for the architecture.
//
// Usage:
//
//	rtkserve -graph web.txt -index web.idx -addr :7471
//	rtkserve -graph web.txt -index web.idx -mmap=off         # portable heap load
//	rtkserve -graph web.txt -K 50 -B 20 -addr 127.0.0.1:0   # build the index at startup
//
// Format-v2 index files are served zero-copy from an mmap'd image by
// default, making daemon cold start a matter of mapping and checksum
// verification instead of a full parse; -mmap=off is the portable escape
// hatch. See the README's "Persistence & cold start" section.
//
// Endpoints:
//
//	GET  /v1/reverse-topk?q=<node>&k=<k>
//	GET  /v1/stats
//	GET  /healthz
//	POST /v1/edits        {"edits":[{"from":1,"to":2},{"from":3,"to":4,"remove":true}],"theta":0}
//
// Edits are asynchronous by default: the POST returns 202 with a journal
// watermark and a single maintenance goroutine applies batches to the graph
// overlay in the background (queries never block); pass "wait":true in the
// body for synchronous edit-then-read semantics. Track progress via
// /v1/stats (applied_watermark, overlay_delta_edges, compactions).
//
// On SIGTERM/SIGINT the daemon drains gracefully: /healthz flips to 503,
// the listener stops accepting, in-flight requests finish (bounded by
// -drain), then the process exits 0.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/graph"
	"repro/internal/lbindex"
	"repro/internal/serve"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("rtkserve: ")
	var (
		graphPath    = flag.String("graph", "", "edge-list path (required unless -shards is given)")
		indexPath    = flag.String("index", "", "prebuilt index path (omit to build at startup); may be a shard-slice file")
		shards       = flag.String("shards", "", "comma-separated shard daemon URLs: run as a fan-out coordinator (no graph/index loaded)")
		addr         = flag.String("addr", ":7471", "listen address")
		k            = flag.Int("K", 200, "maximum supported query k when building the index")
		b            = flag.Int("B", 100, "hub budget when building the index")
		cacheBytes   = flag.Int64("cache-bytes", serve.DefaultCacheBytes, "result cache budget in bytes (negative disables caching)")
		mmapMode     = flag.String("mmap", "on", "serve a v2 index zero-copy from the mapped file: on|off (off = portable heap load)")
		maxInflight  = flag.Int("max-inflight", 0, "max concurrent engine computations (0 = 4×GOMAXPROCS)")
		workers      = flag.Int("workers", 0, "total intra-query worker budget (0 = GOMAXPROCS)")
		drain        = flag.Duration("drain", 15*time.Second, "graceful drain timeout on SIGTERM")
		compactAfter = flag.Int("compact-after", 0, "overlay delta edges before background compaction (0 = max(4096, M/8), negative disables)")
	)
	flag.Parse()
	if *shards != "" {
		// Coordinator mode holds no graph, index or cache; any serving
		// flag alongside -shards is a mixed-up command line, not a request
		// we can half-honor.
		if *graphPath != "" || *indexPath != "" {
			log.Fatal("-shards runs a pure coordinator: -graph/-index belong on the shard daemons")
		}
		runCoordinator(strings.Split(*shards, ","), *addr, *drain)
		return
	}
	if *graphPath == "" {
		log.Fatal("-graph is required (or -shards for coordinator mode)")
	}

	gf, err := os.Open(*graphPath)
	if err != nil {
		log.Fatal(err)
	}
	builder, err := graph.ReadEdgeList(gf)
	gf.Close()
	if err != nil {
		log.Fatal(err)
	}
	g, _, err := builder.Build(graph.DanglingSelfLoop)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("graph: %s", graph.ComputeStats(g))

	var idx *lbindex.Index
	if *indexPath != "" {
		useMmap, err := lbindex.ParseMmapMode(*mmapMode)
		if err != nil {
			log.Fatal(err)
		}
		start := time.Now()
		idx, err = lbindex.LoadFile(*indexPath, lbindex.LoadOptions{Mmap: useMmap})
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("index: loaded %s in %v (K=%d, %d refinement commits, mmap=%v)",
			*indexPath, time.Since(start).Round(time.Microsecond), idx.K(), idx.Refinements(), idx.MmapBacked())
	} else {
		opts := lbindex.DefaultOptions()
		opts.K = *k
		opts.HubBudget = *b
		start := time.Now()
		var stats lbindex.BuildStats
		idx, stats, err = lbindex.Build(g, opts)
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("index: built in %v (%d hubs, %d B)", time.Since(start).Round(time.Millisecond), stats.HubCount, stats.Bytes)
	}

	srv, err := serve.New(g, idx, serve.Config{
		CacheBytes:   *cacheBytes,
		MaxInflight:  *maxInflight,
		WorkerBudget: *workers,
		CompactAfter: *compactAfter,
	})
	if err != nil {
		log.Fatal(err)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	httpSrv := &http.Server{Handler: srv.Handler()}

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, syscall.SIGTERM, syscall.SIGINT)
	drained := make(chan struct{})
	go func() {
		sig := <-sigCh
		log.Printf("received %v: draining (timeout %v)", sig, *drain)
		srv.StartDrain()
		ctx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		if err := httpSrv.Shutdown(ctx); err != nil {
			log.Printf("drain incomplete: %v", err)
		}
		close(drained)
	}()

	log.Printf("listening on %s", ln.Addr())
	if err := httpSrv.Serve(ln); !errors.Is(err, http.ErrServerClosed) {
		log.Fatal(err)
	}
	<-drained
	srv.Close()
	log.Printf("drained; bye")
}

// runCoordinator serves the fan-out coordinator: same routes, no resident
// graph or index — every query scatters to the shard daemons and the
// disjoint answers merge into the exact global answer. See the README's
// "Sharded serving" section for the topology.
func runCoordinator(shardURLs []string, addr string, drain time.Duration) {
	fan, err := serve.NewFanout(serve.FanoutConfig{Shards: shardURLs})
	if err != nil {
		log.Fatal(err)
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		log.Fatal(err)
	}
	httpSrv := &http.Server{Handler: fan.Handler()}
	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, syscall.SIGTERM, syscall.SIGINT)
	drained := make(chan struct{})
	go func() {
		sig := <-sigCh
		log.Printf("received %v: draining coordinator (timeout %v)", sig, drain)
		ctx, cancel := context.WithTimeout(context.Background(), drain)
		defer cancel()
		if err := httpSrv.Shutdown(ctx); err != nil {
			log.Printf("drain incomplete: %v", err)
		}
		close(drained)
	}()
	log.Printf("coordinating %d shards: %s", len(fan.Shards()), strings.Join(fan.Shards(), ", "))
	log.Printf("listening on %s", ln.Addr())
	if err := httpSrv.Serve(ln); !errors.Is(err, http.ErrServerClosed) {
		log.Fatal(err)
	}
	<-drained
	log.Printf("drained; bye")
}
