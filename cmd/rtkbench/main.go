// Command rtkbench regenerates every table and figure of the paper's
// evaluation section (§5) on the synthetic dataset analogs. Each experiment
// prints the same rows/series the paper reports; see EXPERIMENTS.md for the
// recorded paper-vs-measured comparison.
//
// Usage:
//
//	rtkbench -exp all -scale 1
//	rtkbench -exp fig5 -scale 2 -queries 500
//	rtkbench -exp table3
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"runtime"
	"slices"
	"strings"
	"time"

	"repro/internal/exp"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("rtkbench: ")
	var (
		which   = flag.String("exp", "all", "experiment: datasets|table2|fig5|fig6|fig7|fig8|fig9|spam|table3|approx|evolve|serve|all, or coldstart/shard/spmm/recovery/approxtier/obs (not in all: coldstart, shard, spmm and approxtier each build a ~131k-node index, recovery fsyncs a journal per batch, obs races two live daemons)")
		scale   = flag.Int("scale", 1, "graph size multiplier (paper sizes ≈ 5–400)")
		queries = flag.Int("queries", 0, "query workload size override (0 = experiment default; paper: 500)")
		workers = flag.Int("workers", 1, "intra-query workers for the fig5/fig6 query sweep (0 = all cores)")
		jsonOut = flag.String("json", "", "evolve/coldstart/shard/spmm/recovery/approxtier/obs experiments: write the machine-readable BENCH_<exp>.json record to this path")
		verbose = flag.Bool("v", false, "print progress while running")
	)
	flag.Parse()

	// Unknown experiment names fail fast with the full menu instead of
	// silently running nothing.
	valid := []string{"all", "datasets", "table2", "fig5", "fig6", "fig7", "fig8", "fig9",
		"spam", "table3", "approx", "evolve", "serve", "coldstart", "shard", "spmm", "recovery", "approxtier", "obs"}
	if !slices.Contains(valid, *which) {
		log.Fatalf("unknown experiment %q; valid -exp values: %s", *which, strings.Join(valid, ", "))
	}

	var progress io.Writer
	if *verbose {
		progress = os.Stderr
	}
	run := func(name string) bool {
		return *which == "all" || *which == name ||
			(*which == "fig5" && name == "fig6") || (*which == "fig6" && name == "fig5")
	}
	start := time.Now()

	if run("datasets") {
		header("Dataset analogs (§5.1): structural statistics")
		rows, err := exp.RunDatasets(exp.DefaultGraphs(*scale), progress)
		if err != nil {
			log.Fatal(err)
		}
		if err := exp.WriteDatasets(os.Stdout, rows); err != nil {
			log.Fatal(err)
		}
	}

	if run("table2") {
		header("Table 2: index construction time and space")
		cfg := exp.DefaultTable2Config(*scale)
		rows, err := exp.RunTable2(cfg, progress)
		if err != nil {
			log.Fatal(err)
		}
		if err := exp.WriteTable2(os.Stdout, rows); err != nil {
			log.Fatal(err)
		}
	}

	if run("fig5") || run("fig6") {
		cfg := exp.DefaultFig5Config(*scale)
		if *queries > 0 {
			cfg.Queries = *queries
		}
		if *workers <= 0 {
			cfg.Workers = runtime.GOMAXPROCS(0)
		} else {
			cfg.Workers = *workers
		}
		rows, err := exp.RunFigure5And6(cfg, progress)
		if err != nil {
			log.Fatal(err)
		}
		if run("fig5") {
			header("Figure 5: query time vs k (update / no-update)")
			if err := exp.WriteFigure5(os.Stdout, rows); err != nil {
				log.Fatal(err)
			}
		}
		if run("fig6") {
			header("Figure 6: candidates / hits / results vs k")
			if err := exp.WriteFigure6(os.Stdout, rows); err != nil {
				log.Fatal(err)
			}
		}
	}

	if run("fig7") {
		header("Figure 7: per-query cost across the workload (index refinement effect)")
		cfg := exp.DefaultFig7Config(*scale)
		if *queries > 0 {
			cfg.Queries = *queries
		}
		points, err := exp.RunFigure7(cfg, progress)
		if err != nil {
			log.Fatal(err)
		}
		if err := exp.WriteFigure7(os.Stdout, points); err != nil {
			log.Fatal(err)
		}
	}

	if run("fig8") {
		header("Figure 8: cumulative cost vs brute force (IBF / FBF), single-core accounting")
		points, err := exp.RunFigure8(exp.DefaultFig8Config(*scale), progress)
		if err != nil {
			log.Fatal(err)
		}
		if err := exp.WriteFigure8(os.Stdout, points); err != nil {
			log.Fatal(err)
		}
	}

	if run("fig9") {
		header("Figure 9: rounding threshold ω vs result similarity")
		cfg := exp.DefaultFig9Config(*scale)
		if *queries > 0 {
			cfg.Queries = *queries
		}
		rows, err := exp.RunFigure9(cfg, progress)
		if err != nil {
			log.Fatal(err)
		}
		if err := exp.WriteFigure9(os.Stdout, rows); err != nil {
			log.Fatal(err)
		}
	}

	if run("spam") {
		header("§5.4 spam detection: label purity of reverse top-5 answers")
		res, err := exp.RunSpamDetection(exp.DefaultSpamConfig(*scale), progress)
		if err != nil {
			log.Fatal(err)
		}
		if err := exp.WriteSpamResult(os.Stdout, res); err != nil {
			log.Fatal(err)
		}
	}

	if run("approx") {
		header("Extension: hits-only approximate queries (§5.3 suggestion) — recall/precision/speedup")
		cfg := exp.DefaultApproxConfig(*scale)
		if *queries > 0 {
			cfg.Queries = *queries
		}
		rows, err := exp.RunApproxStudy(cfg, progress)
		if err != nil {
			log.Fatal(err)
		}
		if err := exp.WriteApproxStudy(os.Stdout, rows); err != nil {
			log.Fatal(err)
		}
	}

	if run("evolve") {
		cfg := exp.DefaultEvolveConfig(*scale)
		if *queries > 0 {
			cfg.Queries = *queries
		}
		if *jsonOut != "" {
			header("Extension: evolving graphs — overlay edit throughput + incremental refresh vs rebuild")
			res, err := exp.RunEvolveBench(cfg, progress)
			if err != nil {
				log.Fatal(err)
			}
			if err := exp.WriteEvolveBench(os.Stdout, res, *jsonOut); err != nil {
				log.Fatal(err)
			}
			if err := exp.WriteEvolveStudy(os.Stdout, res.Refresh); err != nil {
				log.Fatal(err)
			}
		} else {
			header("Extension: evolving graphs (§7 future work) — incremental refresh vs rebuild")
			rows, err := exp.RunEvolveStudy(cfg, progress)
			if err != nil {
				log.Fatal(err)
			}
			if err := exp.WriteEvolveStudy(os.Stdout, rows); err != nil {
				log.Fatal(err)
			}
		}
	}

	if *which == "coldstart" {
		header("Persistence: index load cost per format generation (v1 parse / v2 heap / v2 mmap)")
		res, err := exp.RunColdstart(exp.DefaultColdstartConfig(*scale), progress)
		if err != nil {
			log.Fatal(err)
		}
		if err := exp.WriteColdstart(os.Stdout, res, *jsonOut); err != nil {
			log.Fatal(err)
		}
	}

	if *which == "shard" {
		header("Sharding: scatter-gather coordinator throughput + cross-shard bound pruning vs P")
		cfg := exp.DefaultShardBenchConfig(*scale)
		if *queries > 0 {
			cfg.Queries = *queries
		}
		res, err := exp.RunShardBench(cfg, progress)
		if err != nil {
			log.Fatal(err)
		}
		if err := exp.WriteShardBench(os.Stdout, res, *jsonOut); err != nil {
			log.Fatal(err)
		}
	}

	if *which == "spmm" {
		header("Batching: multi-query SpMM proximity tier — aggregate qps vs batch width")
		cfg := exp.DefaultSpMMBenchConfig(*scale)
		if *queries > 0 {
			cfg.Queries = *queries
		}
		res, err := exp.RunSpMMBench(cfg, progress)
		if err != nil {
			log.Fatal(err)
		}
		if err := exp.WriteSpMMBench(os.Stdout, res, *jsonOut); err != nil {
			log.Fatal(err)
		}
	}

	if *which == "approxtier" {
		header("Anytime tier: (ε,δ) accuracy/latency frontier vs the exact engine")
		cfg := exp.DefaultApproxTierConfig(*scale)
		if *queries > 0 {
			cfg.Queries = *queries
		}
		res, err := exp.RunApprox(cfg, progress)
		if err != nil {
			log.Fatal(err)
		}
		if err := exp.WriteApprox(os.Stdout, res, *jsonOut); err != nil {
			log.Fatal(err)
		}
	}

	if *which == "obs" {
		header("Observability: instrumentation overhead (structured logs + slow log + tracing) vs a quiet daemon")
		cfg := exp.DefaultObsBenchConfig(*scale)
		if *queries > 0 {
			cfg.Queries = *queries
		}
		res, err := exp.RunObsBench(cfg, progress)
		if err != nil {
			log.Fatal(err)
		}
		if err := exp.WriteObsBench(os.Stdout, res, *jsonOut); err != nil {
			log.Fatal(err)
		}
	}

	if *which == "recovery" {
		header("Durability: edit acknowledgement latency (fsync / no-sync / volatile) + journal replay time")
		res, err := exp.RunRecovery(exp.DefaultRecoveryConfig(*scale), progress)
		if err != nil {
			log.Fatal(err)
		}
		if err := exp.WriteRecovery(os.Stdout, res, *jsonOut); err != nil {
			log.Fatal(err)
		}
	}

	if run("serve") {
		header("Serving: rtkserve HTTP smoke — cold / warm-cache / post-refresh")
		cfg := exp.DefaultServeConfig(*scale)
		if *queries > 0 {
			cfg.Queries = *queries
		}
		rows, err := exp.RunServeSmoke(cfg, progress)
		if err != nil {
			log.Fatal(err)
		}
		if err := exp.WriteServeSmoke(os.Stdout, rows); err != nil {
			log.Fatal(err)
		}
	}

	if run("table3") {
		header("Table 3: longest reverse top-5 lists in the co-authorship network")
		rows, err := exp.RunTable3(exp.DefaultTable3Config(*scale), progress)
		if err != nil {
			log.Fatal(err)
		}
		if err := exp.WriteTable3(os.Stdout, rows); err != nil {
			log.Fatal(err)
		}
	}

	fmt.Printf("\ndone in %v\n", time.Since(start).Round(time.Millisecond))
}

func header(title string) {
	fmt.Printf("\n%s\n%s\n", title, strings.Repeat("=", len(title)))
}
