// Command rtkindex builds the reverse top-k lower-bound index (Algorithm 1)
// for a graph stored as an edge list, reports construction statistics in
// the style of Table 2, and writes the index in its binary format
// (checksummed, mmap-able format v2).
//
// Usage:
//
//	rtkindex -graph web.txt -out web.idx -K 200 -B 100 -omega 1e-6
//	rtkindex -rewrite old.idx -out new.idx    # migrate a v1 file to v2
//	rtkindex -graph web.txt -out web.idx -partition 4 -strategy balanced
//	rtkindex -graph web.txt -out web.idx -relabel degree   # cache-aware layout
//
// With -relabel the graph is permuted into a cache-aware node order
// (degree-descending or reverse Cuthill–McKee) before the build, and the
// permutation is stored in the index file; rtkserve/rtkquery translate at
// the API boundary, so external identifiers never change.
//
// With -partition P the index is built ONCE and then streamed out as P
// shard-slice files (web.idx.shard0of4, …), each carrying the partition
// map, its owned rows and the full hub matrix — together ≈ one full
// index's bytes, not P×, and never more than one full index resident in
// memory. Serve each slice with a stock rtkserve and put an
// `rtkserve -shards ...` coordinator in front; see the README's "Sharded
// serving" section.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"repro/internal/graph"
	"repro/internal/lbindex"
	"repro/internal/partition"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("rtkindex: ")
	var (
		graphPath = flag.String("graph", "", "input edge-list path (required)")
		out       = flag.String("out", "", "output index path (required)")
		k         = flag.Int("K", 200, "maximum supported query k")
		b         = flag.Int("B", 100, "hub budget: union of top-B in/out degree nodes")
		scheme    = flag.String("hubs", "degree", "hub selection: degree|greedy|none")
		omega     = flag.Float64("omega", 1e-6, "hub rounding threshold ω")
		eta       = flag.Float64("eta", 1e-4, "BCA propagation threshold η")
		delta     = flag.Float64("delta", 0.1, "BCA residue threshold δ")
		alpha     = flag.Float64("alpha", 0.15, "restart probability α")
		workers   = flag.Int("workers", 0, "build parallelism (0 = GOMAXPROCS)")
		rewrite   = flag.String("rewrite", "", "load an existing index (v1 or v2) and rewrite it as format v2 to -out, instead of building")
		part      = flag.Int("partition", 0, "also write P shard-slice files <out>.shard<i>of<P> for sharded serving (0 = none)")
		strategy  = flag.String("strategy", "balanced", "partitioner for -partition: hash|range|balanced")
		relabel   = flag.String("relabel", "none", "cache-aware node relabeling baked into the index: none|degree|rcm (external ids never change; the permutation is stored in the file)")
	)
	flag.Parse()
	if *rewrite != "" {
		if *out == "" {
			log.Fatal("-rewrite requires -out")
		}
		if *part != 0 {
			log.Fatal("-rewrite migrates a file as-is and cannot partition; build with -graph -partition instead")
		}
		doRewrite(*rewrite, *out)
		return
	}
	if *graphPath == "" || *out == "" {
		log.Fatal("-graph and -out are required")
	}

	f, err := os.Open(*graphPath)
	if err != nil {
		log.Fatal(err)
	}
	builder, err := graph.ReadEdgeList(f)
	f.Close()
	if err != nil {
		log.Fatal(err)
	}
	g, _, err := builder.Build(graph.DanglingSelfLoop)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("graph: %s\n", graph.ComputeStats(g))

	// Cache-aware relabeling: permute the graph BEFORE the build so every
	// index structure lives in the permuted (internal) space, then record the
	// permutation on the index so the query boundary translates external ids.
	var perm graph.Permutation
	switch *relabel {
	case "none":
	case "degree":
		perm = graph.DegreeOrderPermutation(g)
	case "rcm":
		perm = graph.RCMPermutation(g)
	default:
		log.Fatalf("unknown relabeling %q; valid -relabel values: none, degree, rcm", *relabel)
	}
	if perm.IsIdentity() {
		perm = nil // nothing to translate; don't burden the file with a no-op section
	}
	if perm != nil {
		pg, err := graph.ApplyPermutation(g, perm)
		if err != nil {
			log.Fatal(err)
		}
		g = pg
		fmt.Printf("relabel: %s order applied (%d nodes permuted)\n", *relabel, len(perm))
	}

	opts := lbindex.DefaultOptions()
	opts.K = *k
	opts.HubBudget = *b
	opts.Omega = *omega
	opts.BCA.Eta = *eta
	opts.BCA.Delta = *delta
	opts.BCA.Alpha = *alpha
	opts.RWR.Alpha = *alpha
	opts.Workers = *workers
	switch *scheme {
	case "degree":
		opts.HubScheme = lbindex.HubsByDegree
	case "greedy":
		opts.HubScheme = lbindex.HubsGreedy
	case "none":
		opts.HubScheme = lbindex.HubsNone
	default:
		log.Fatalf("unknown hub scheme %q; valid -hubs values: degree, greedy, none", *scheme)
	}
	// Resolve the partitioner before the (possibly long) build so a typo
	// fails in milliseconds, not after the index exists.
	var strat partition.Strategy
	if *part != 0 {
		if *part < 0 {
			log.Fatalf("-partition must be positive, got %d", *part)
		}
		var err error
		if strat, err = partition.ParseStrategy(*strategy); err != nil {
			log.Fatalf("%v; valid -strategy values: %s", err, strings.Join(partition.Strategies(), ", "))
		}
	}

	idx, stats, err := lbindex.Build(g, opts)
	if err != nil {
		log.Fatal(err)
	}
	if perm != nil {
		if err := idx.SetRelabeling(perm); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("hubs: %d (selection+vectors took %v)\n", stats.HubCount, stats.HubElapsed.Round(time.Millisecond))
	fmt.Printf("build: %v total, %d BCA iterations\n", stats.TotalElapsed.Round(time.Millisecond), stats.TotalIters)
	fmt.Printf("size: actual %d B, unrounded %d B, Theorem-1 predicted %d B, P̂ alone %d B\n",
		stats.Bytes, stats.UnroundedBytes, stats.PredictedBytes, stats.PhatBytes)

	if err := idx.SaveFile(*out); err != nil {
		log.Fatal(err)
	}
	info, err := os.Stat(*out)
	if err == nil {
		fmt.Printf("wrote %s (%d B on disk)\n", *out, info.Size())
	}

	if *part > 0 {
		pm, perr := partition.New(strat, g, g.N(), *part, 0)
		if perr != nil {
			log.Fatal(perr)
		}
		// One pass over the in-memory index: each slice shares its rows
		// (O(owned) pointers) and streams straight to disk through the v2
		// writer — peak memory stays one full index, never P×.
		for s := 0; s < pm.P(); s++ {
			slice, err := idx.ShardSlice(pm, s)
			if err != nil {
				log.Fatal(err)
			}
			path := ShardPath(*out, s, pm.P())
			if err := slice.SaveFile(path); err != nil {
				log.Fatal(err)
			}
			size := int64(0)
			if fi, err := os.Stat(path); err == nil {
				size = fi.Size()
			}
			fmt.Printf("wrote %s (%s shard %d/%d, %d owned rows, %d B on disk)\n",
				path, pm.Strategy(), s, pm.P(), len(slice.OwnedNodes()), size)
		}
	}
}

// ShardPath names shard s's slice file for a base output path.
func ShardPath(out string, s, p int) string {
	return fmt.Sprintf("%s.shard%dof%d", out, s, p)
}

// doRewrite migrates an index file to format v2: a full (heap, deeply
// validated) load followed by a checksummed v2 save. The two files answer
// queries bit-identically; only the container changes.
func doRewrite(in, out string) {
	idx, err := lbindex.LoadFile(in, lbindex.LoadOptions{})
	if err != nil {
		log.Fatal(err)
	}
	if err := idx.SaveFile(out); err != nil {
		log.Fatal(err)
	}
	info, err := os.Stat(out)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("rewrote %s → %s as format v2 (n=%d K=%d, %d refinement commits, %d B on disk)\n",
		in, out, idx.N(), idx.K(), idx.Refinements(), info.Size())
}
