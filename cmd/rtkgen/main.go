// Command rtkgen generates the synthetic benchmark graphs used throughout
// this repository (web/social analogs, labeled spam hosts, weighted
// co-authorship networks) and writes them as SNAP-style edge lists.
//
// Usage:
//
//	rtkgen -kind web -n 10000 -seed 1 -out web.txt
//	rtkgen -kind spam -scale 2 -out spam.txt -labels spam.labels
//	rtkgen -kind coauthor -scale 1 -out dblp.txt -authors authors.tsv
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/gen"
	"repro/internal/graph"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("rtkgen: ")
	var (
		kind    = flag.String("kind", "web", "graph kind: web|social|er|rmat|spam|coauthor")
		n       = flag.Int("n", 10000, "node count (web/social/er)")
		m       = flag.Int("m", 0, "edge count (er; default 5n)")
		scale   = flag.Int("scale", 1, "population scale factor (spam/coauthor)")
		rmat    = flag.Int("rmatscale", 14, "log2 node count (rmat)")
		seed    = flag.Int64("seed", 1, "generator seed")
		out     = flag.String("out", "", "output edge-list path (required)")
		labels  = flag.String("labels", "", "label output path (spam)")
		authors = flag.String("authors", "", "author metadata output path (coauthor)")
	)
	flag.Parse()
	if *out == "" {
		log.Fatal("-out is required")
	}

	var (
		g   *graph.Graph
		err error
	)
	switch *kind {
	case "web":
		g, err = gen.WebGraph(*n, *seed)
	case "social":
		g, err = gen.SocialGraph(*n, *seed)
	case "er":
		edges := *m
		if edges == 0 {
			edges = 5 * *n
		}
		g, err = gen.ErdosRenyi(*n, edges, *seed)
	case "rmat":
		g, err = gen.RMAT(*rmat, 8, 0.57, 0.19, 0.19, 0.05, *seed)
	case "spam":
		opts := gen.DefaultSpamWebOptions(*scale)
		opts.Seed = *seed
		var lbs []gen.Label
		g, lbs, err = gen.SpamWeb(opts)
		if err == nil && *labels != "" {
			err = writeLabels(*labels, lbs)
		}
	case "coauthor":
		opts := gen.DefaultCoauthorOptions(*scale)
		opts.Seed = *seed
		var as []gen.Author
		g, as, err = gen.Coauthor(opts)
		if err == nil && *authors != "" {
			err = writeAuthors(*authors, as)
		}
	default:
		log.Fatalf("unknown kind %q", *kind)
	}
	if err != nil {
		log.Fatal(err)
	}

	f, err := os.Create(*out)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	if err := graph.WriteEdgeList(f, g); err != nil {
		log.Fatal(err)
	}
	stats := graph.ComputeStats(g)
	fmt.Printf("wrote %s: %s\n", *out, stats)
}

func writeLabels(path string, labels []gen.Label) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	w := bufio.NewWriter(f)
	for i, l := range labels {
		fmt.Fprintf(w, "%d\t%s\n", i, l)
	}
	return w.Flush()
}

func writeAuthors(path string, authors []gen.Author) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	w := bufio.NewWriter(f)
	fmt.Fprintln(w, "# id\tname\tpublications\tcoauthors\tprolific")
	for i, a := range authors {
		fmt.Fprintf(w, "%d\t%s\t%d\t%d\t%t\n", i, a.Name, a.Publications, a.Coauthors, a.Prolific)
	}
	return w.Flush()
}
