// Author-popularity ranking in a co-authorship network (§5.4, Table 3).
//
// The size of an author's reverse top-k set — how many researchers count
// this author among their k most important direct or indirect
// collaborators — is a popularity signal that degree alone misses: the
// paper's headline authors have reverse top-5 lists an order of magnitude
// longer than their coauthor lists. This example reproduces the phenomenon
// on a synthetic weighted co-authorship network with planted prolific
// authors.
//
// Run with: go run ./examples/coauthor
package main

import (
	"fmt"
	"log"
	"sort"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/lbindex"
)

func main() {
	log.SetFlags(0)

	opts := gen.DefaultCoauthorOptions(1)
	opts.Authors = 600 // keep the demo snappy; rtkbench -exp table3 runs larger
	opts.Communities = 12
	g, authors, err := gen.Coauthor(opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("co-authorship network: %d authors, %d weighted edges\n", g.N(), g.M())

	iopts := lbindex.DefaultOptions()
	iopts.K = 50
	iopts.HubBudget = 15
	idx, _, err := lbindex.Build(g, iopts)
	if err != nil {
		log.Fatal(err)
	}
	eng, err := core.NewEngine(g, idx, true)
	if err != nil {
		log.Fatal(err)
	}

	// Reverse top-5 from every author; rank by answer size.
	sizes := make([]int, g.N())
	for u := graph.NodeID(0); int(u) < g.N(); u++ {
		answer, _, err := eng.Query(u, 5)
		if err != nil {
			log.Fatal(err)
		}
		sizes[u] = len(answer)
	}
	order := make([]int, g.N())
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return sizes[order[a]] > sizes[order[b]] })

	fmt.Println("\nauthor         reverse_top5  coauthors  planted_prolific")
	for _, i := range order[:10] {
		fmt.Printf("%-14s %-13d %-10d %t\n",
			authors[i].Name, sizes[i], authors[i].Coauthors, authors[i].Prolific)
	}
	fmt.Println("\nNote how the planted prolific authors' reverse top-5 lists exceed")
	fmt.Println("their coauthor counts: non-coauthors regard them as key collaborators")
	fmt.Println("through indirect paths — exactly Table 3's observation.")
}
