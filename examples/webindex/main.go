// Index lifecycle on a web-scale-shaped graph: build, persist, reload, and
// watch dynamic refinement (§4.2.3) make repeated queries cheaper.
//
// Run with: go run ./examples/webindex
package main

import (
	"bytes"
	"fmt"
	"log"
	"time"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/lbindex"
	"repro/internal/workload"
)

func main() {
	log.SetFlags(0)

	g, err := gen.WebGraph(3000, 42)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("web graph: %s\n", graph.ComputeStats(g))

	opts := lbindex.DefaultOptions()
	opts.K = 100
	opts.HubBudget = 30
	idx, stats, err := lbindex.Build(g, opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("index built in %v: %d hubs, %s in memory (Theorem 1 predicted %s)\n",
		stats.TotalElapsed.Round(time.Millisecond), stats.HubCount,
		fmtBytes(stats.Bytes), fmtBytes(stats.PredictedBytes))

	// Persist and reload — the binary format round-trips bit-exactly.
	var buf bytes.Buffer
	if err := idx.Save(&buf); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("serialized: %s on disk\n", fmtBytes(int64(buf.Len())))
	idx, err = lbindex.Load(&buf)
	if err != nil {
		log.Fatal(err)
	}

	// Run a query workload twice against the updating index: the second
	// pass reuses the refinements committed by the first (§4.2.3).
	eng, err := core.NewEngine(g, idx, true)
	if err != nil {
		log.Fatal(err)
	}
	queries, err := workload.Queries(g.N(), 30, 7)
	if err != nil {
		log.Fatal(err)
	}
	for pass := 1; pass <= 2; pass++ {
		var elapsed time.Duration
		var refines int
		for _, q := range queries {
			_, qs, err := eng.Query(q, 50)
			if err != nil {
				log.Fatal(err)
			}
			elapsed += qs.Elapsed
			refines += qs.RefineSteps
		}
		fmt.Printf("pass %d: %v total, %d refinement steps (index refinements so far: %d)\n",
			pass, elapsed.Round(time.Millisecond), refines, idx.Refinements())
	}
	fmt.Println("the second pass needs fewer refinement steps: earlier queries already")
	fmt.Println("tightened the stored lower bounds — the paper's Figure 7 effect.")
}

func fmtBytes(b int64) string {
	switch {
	case b >= 1<<20:
		return fmt.Sprintf("%.2fMB", float64(b)/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.2fKB", float64(b)/(1<<10))
	default:
		return fmt.Sprintf("%dB", b)
	}
}
