// Quickstart: build a small graph, index it, and answer a reverse top-k
// query — the minimal end-to-end use of the library.
//
// A reverse top-k query asks: "which nodes rank q among their k closest
// nodes under random walk with restart?" — the inverse of the usual top-k
// proximity search.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/lbindex"
)

func main() {
	log.SetFlags(0)

	// The 6-node toy graph in the spirit of the paper's Figure 1.
	g, err := graph.FromEdges(6, [][2]graph.NodeID{
		{0, 1}, {0, 3}, {1, 0}, {1, 2}, {2, 1}, {2, 2},
		{3, 0}, {3, 1}, {3, 4}, {4, 0}, {4, 1}, {4, 4}, {5, 1}, {5, 5},
	}, graph.DanglingSelfLoop)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("graph: %d nodes, %d edges\n", g.N(), g.M())

	// Build the lower-bound index (Algorithm 1). K bounds the largest k a
	// query may use; B controls how many high-degree nodes become hubs.
	opts := lbindex.DefaultOptions()
	opts.K = 3
	opts.HubBudget = 1
	idx, stats, err := lbindex.Build(g, opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("index: %d hubs, built in %v, %d bytes\n",
		stats.HubCount, stats.TotalElapsed, stats.Bytes)

	// Query: who has node 1 among their top-2 closest nodes?
	eng, err := core.NewEngine(g, idx, true /* refine the index as we go */)
	if err != nil {
		log.Fatal(err)
	}
	for q := graph.NodeID(0); int(q) < g.N(); q++ {
		answer, qs, err := eng.Query(q, 2)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("reverse top-2 of node %d: %v  (candidates=%d hits=%d refines=%d)\n",
			q, answer, qs.Candidates, qs.Hits, qs.RefineSteps)
	}

	// Cross-check one answer against the brute force oracle.
	bf, err := core.BruteForce(g, 1, 2, idx.Options().RWR, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("brute-force check for q=1: %v\n", bf)
}
