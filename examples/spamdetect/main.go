// Spam detection with reverse top-k RWR search (§5.4 of the paper).
//
// The idea: a web page's PageRank is the sum of RWR contributions it
// receives from all pages. If the pages that give q one of their TOP-k
// contributions are mostly known spam, q is very likely spam too — link
// farms boost each other. This example generates a labeled host graph with
// planted link farms, runs reverse top-5 queries from suspicious hosts, and
// scores them by the spam ratio of their answer sets.
//
// Run with: go run ./examples/spamdetect
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/lbindex"
)

func main() {
	log.SetFlags(0)

	opts := gen.DefaultSpamWebOptions(1)
	g, labels, err := gen.SpamWeb(opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("host graph: %d hosts (%d normal, %d spam, %d undecided), %d links\n",
		g.N(), opts.Normal, opts.Spam, opts.Undecided, g.M())

	iopts := lbindex.DefaultOptions()
	iopts.K = 50
	iopts.HubBudget = 10
	idx, _, err := lbindex.Build(g, iopts)
	if err != nil {
		log.Fatal(err)
	}
	eng, err := core.NewEngine(g, idx, true)
	if err != nil {
		log.Fatal(err)
	}

	// Score a mix of suspicious hosts: some actually spam, some normal.
	suspicious := []graph.NodeID{
		graph.NodeID(opts.Normal),      // a spam host
		graph.NodeID(opts.Normal + 17), // another spam host
		5,                              // a normal host
		graph.NodeID(opts.Normal - 3),  // another normal host
	}
	fmt.Println("\nhost  true_label  |answer|  spam_ratio  verdict")
	for _, q := range suspicious {
		answer, _, err := eng.Query(q, 5)
		if err != nil {
			log.Fatal(err)
		}
		spam := 0
		for _, v := range answer {
			if labels[v] == gen.LabelSpam {
				spam++
			}
		}
		ratio := 0.0
		if len(answer) > 0 {
			ratio = float64(spam) / float64(len(answer))
		}
		verdict := "looks normal"
		if ratio > 0.5 {
			verdict = "LIKELY SPAM"
		}
		fmt.Printf("%-5d %-11s %-8d %-11.2f %s\n", q, labels[q], len(answer), ratio, verdict)
	}
}
