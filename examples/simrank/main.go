// Reverse top-k under SimRank — the paper's §7 future-work direction,
// implemented in internal/simrank for small graphs.
//
// SimRank considers two nodes similar when similar nodes point at them
// (symmetric, in-link driven), while RWR proximity follows out-links from
// the source. This example runs BOTH reverse top-k queries on the same
// co-purchase-style graph and shows how the two notions diverge: RWR
// answers "whose purchases lead to q?", SimRank answers "who is bought in
// the same contexts as q?".
//
// Run with: go run ./examples/simrank
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/lbindex"
	"repro/internal/simrank"
)

func main() {
	log.SetFlags(0)

	// A small product co-purchase graph: an edge a→b means "buyers of a
	// also bought b". The copying model gives it the familiar
	// popular-product skew.
	g, err := gen.Copying(300, 4, 0.7, 0.2, 99)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("co-purchase graph: %d products, %d links\n", g.N(), g.M())

	q := graph.NodeID(42)
	k := 5

	// RWR reverse top-k (the paper's query).
	opts := lbindex.DefaultOptions()
	opts.K = 20
	opts.HubBudget = 5
	idx, _, err := lbindex.Build(g, opts)
	if err != nil {
		log.Fatal(err)
	}
	eng, err := core.NewEngine(g, idx, true)
	if err != nil {
		log.Fatal(err)
	}
	rwrAnswer, _, err := eng.Query(q, k)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nRWR reverse top-%d of product %d (%d products):\n  %v\n", k, q, len(rwrAnswer), rwrAnswer)
	fmt.Println("  → products whose buyers are funneled toward", q)

	// SimRank reverse top-k (the future-work query).
	m, err := simrank.Compute(g, simrank.DefaultParams())
	if err != nil {
		log.Fatal(err)
	}
	srAnswer, err := m.ReverseTopK(q, k)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nSimRank reverse top-%d of product %d (%d products):\n  %v\n", k, q, len(srAnswer), srAnswer)
	fmt.Println("  → products that consider", q, "one of their most similar peers")

	// Show q's own most similar products for context.
	fmt.Printf("\nproducts most similar to %d by SimRank:\n", q)
	for _, e := range m.TopK(q, 5) {
		fmt.Printf("  product %-5d score %.4f\n", e.Index, e.Value)
	}
}
