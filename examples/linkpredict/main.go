// Link prediction with RWR proximity (Liben-Nowell & Kleinberg, cited in
// the paper's §1 as a motivating application of node-to-node proximity).
//
// Protocol: hide a random sample of edges, rank candidate endpoints for
// each probe node by RWR proximity on the remaining graph, and count how
// often the hidden neighbor appears in the proximity top-10. RWR should
// beat the random-guess baseline by a wide margin — it aggregates ALL
// paths to the hidden neighbor, not just the direct edge we removed.
//
// Run with: go run ./examples/linkpredict
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/rwr"
	"repro/internal/vecmath"
)

func main() {
	log.SetFlags(0)
	rng := rand.New(rand.NewSource(5))

	full, err := gen.SocialGraph(1500, 7)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("social graph: %s\n", graph.ComputeStats(full))

	// Hide one outgoing edge from each of 100 probe nodes.
	type hidden struct{ from, to graph.NodeID }
	var probes []hidden
	seen := map[graph.NodeID]bool{}
	for len(probes) < 100 {
		u := graph.NodeID(rng.Intn(full.N()))
		if seen[u] || full.OutDegree(u) < 3 {
			continue
		}
		seen[u] = true
		nbrs := full.OutNeighbors(u)
		probes = append(probes, hidden{u, nbrs[rng.Intn(len(nbrs))]})
	}
	removed := map[[2]graph.NodeID]bool{}
	for _, p := range probes {
		removed[[2]graph.NodeID{p.from, p.to}] = true
	}
	b := graph.NewBuilder(full.N())
	for u := graph.NodeID(0); int(u) < full.N(); u++ {
		for _, v := range full.OutNeighbors(u) {
			if !removed[[2]graph.NodeID{u, v}] {
				b.AddEdge(u, v)
			}
		}
	}
	train, _, err := b.Build(graph.DanglingSelfLoop)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("hidden %d edges; training graph has %d edges\n", len(probes), train.M())

	// Rank candidates by RWR proximity from each probe node; existing
	// neighbors and the node itself are excluded from the candidate set.
	params := rwr.DefaultParams()
	const topN = 10
	hits := 0
	for _, p := range probes {
		res, err := rwr.ProximityVector(train, p.from, params)
		if err != nil {
			log.Fatal(err)
		}
		scores := res.Vector
		scores[p.from] = 0
		for _, v := range train.OutNeighbors(p.from) {
			scores[v] = 0
		}
		for _, e := range vecmath.TopKEntries(scores, topN) {
			if graph.NodeID(e.Index) == p.to {
				hits++
				break
			}
		}
	}
	precision := float64(hits) / float64(len(probes))
	baseline := float64(topN) / float64(full.N()) // random guessing
	fmt.Printf("\nhidden edge recovered in proximity top-%d: %.0f%% of probes\n", topN, 100*precision)
	fmt.Printf("random-guess baseline: %.2f%%  →  RWR lift ≈ %.0f×\n", 100*baseline, precision/baseline)
}
